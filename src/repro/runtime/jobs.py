"""Job-level supervision: deadlines, retry/backoff, and tier routing.

PRs 1 and 5 hardened the *intra-run* execution ladder (task retry →
reassignment → inline → degrade-to-serial); this module supervises whole
**jobs** — one compile+solve request, the unit a simulation service
accepts.  A :class:`JobManager` runs each :class:`JobSpec` as a supervised
attempt loop:

* a wall-clock **deadline** covers the entire job, enforced before every
  attempt, inside every RHS round (via :class:`DeadlineGuard`), and on
  every backoff sleep; exceeding it terminates the job with a structured
  ``kind="deadline"`` :class:`JobFailure` (deadlines are a contract with
  the caller, so they are never retried),
* a :class:`JobRetryPolicy` bounds retries with exponential backoff and
  **deterministic jitter**: the jitter stream is seeded per job from
  ``(spec.seed, job_id)``, so a re-run of the same job plan backs off
  identically — chaos soaks are reproducible to the event log,
* each retry **resumes from the newest valid checkpoint** the failed
  attempt wrote (CRC-validated with rotation fallback, see
  :mod:`repro.runtime.checkpoint`), so work done before a crash is kept,
* per-tier :class:`~repro.runtime.circuit.CircuitBreaker` instances route
  jobs away from executor tiers that keep failing (process → thread →
  serial), with half-open probing to let a recovered tier back in,
* every decision — submission, attempt, reroute, retry, backoff, circuit
  transition, completion, failure — lands in the shared
  :class:`~repro.runtime.events.RuntimeEvents` log.

The manager is synchronous by design: it is the *supervision substrate*
the planned asyncio service front end (ROADMAP open item 3) will call
into, and every waiting primitive (``clock``, ``sleep``) is injectable so
tests drive it without real time passing.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from .checkpoint import CheckpointError, Checkpointer, load_checkpoint
from .circuit import CircuitBreaker
from .events import RuntimeEvents
from .faults import WorkerKill

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..codegen.program import GeneratedProgram
    from ..solver.common import SolverResult
    from ..solver.recovery import RecoveryPolicy
    from .faults import FaultInjector, StorageFaultInjector

__all__ = [
    "EXECUTOR_TIERS",
    "DeadlineGuard",
    "Job",
    "JobAttempt",
    "JobDeadlineExceeded",
    "JobFailure",
    "JobManager",
    "JobRetryPolicy",
    "JobSpec",
]

#: executor tiers in degradation order; routing walks rightward from the
#: requested tier until a breaker admits the job (serial always does)
EXECUTOR_TIERS = ("process", "thread", "serial")

#: terminal + transient job states
JOB_STATES = ("pending", "running", "retrying", "completed", "failed")


class JobDeadlineExceeded(BaseException):
    """The job's wall-clock deadline elapsed mid-solve.

    Derives from ``BaseException`` (like ``WorkerKill``) so the solver
    recovery layer's ``except Exception`` guards cannot swallow it and
    convert a hard deadline into a shrink-and-retry loop.
    """

    def __init__(self, job_id: int, deadline: float) -> None:
        super().__init__(
            f"job {job_id} exceeded its {deadline:g}s deadline"
        )
        self.job_id = job_id
        self.deadline = deadline


class JobFailure(RuntimeError):
    """A job terminated unsuccessfully, with structure for the caller.

    ``kind`` classifies the terminal cause: ``"deadline"`` (wall-clock
    budget exhausted), ``"compile"`` (the compiler rejected the model),
    ``"solver"`` (a structured :class:`~repro.solver.recovery.SolverFailure`
    after in-solver recovery), or ``"runtime"`` (any other executor or
    infrastructure error).  ``attempts`` is how many attempts ran.
    """

    def __init__(
        self,
        job_id: int,
        name: str,
        kind: str,
        attempts: int,
        reason: str,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(
            f"job {job_id} ({name}): {kind} failure after "
            f"{attempts} attempt(s): {reason}"
        )
        self.job_id = job_id
        self.name = name
        self.kind = kind
        self.attempts = attempts
        self.reason = reason
        self.cause = cause


@dataclass(frozen=True)
class JobRetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Backoff before retry ``n`` (1-based) is
    ``backoff * backoff_factor**(n-1)`` capped at ``max_backoff``, then
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` from the *caller-supplied* RNG — the
    manager seeds one generator per job, so schedules are reproducible.
    """

    max_retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, retry_number: int, rng: np.random.Generator) -> float:
        """Backoff before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            return 0.0
        base = min(
            self.backoff * self.backoff_factor ** (retry_number - 1),
            self.max_backoff,
        )
        if self.jitter == 0.0:
            return base
        return base * float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))


class DeadlineGuard:
    """RHS wrapper that enforces a wall-clock deadline per evaluation.

    Raises :class:`JobDeadlineExceeded` *before* dispatching the round, so
    a deadline can fire between solver steps without needing cooperation
    from the stepper internals.
    """

    def __init__(
        self,
        f: Callable[[float, np.ndarray], np.ndarray],
        deadline_at: float,
        deadline: float,
        job_id: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.f = f
        self.deadline_at = deadline_at
        self.deadline = deadline
        self.job_id = job_id
        self.clock = clock

    def __call__(self, t: float, y: np.ndarray) -> np.ndarray:
        if self.clock() >= self.deadline_at:
            raise JobDeadlineExceeded(self.job_id, self.deadline)
        return self.f(t, y)


@dataclass
class JobSpec:
    """One supervised compile+solve request.

    Either ``source`` (ObjectMath-like model text, compiled through the
    manager's shared artifact cache) or a ready ``program`` must be given.
    ``executor_options`` is forwarded to the executor constructor
    (``level_timeout``, ``retry_policy``, heartbeat knobs, …);
    ``fault_injector`` wires a scripted task-fault plan into whichever
    executor tier the job lands on (chaos harness hook).
    """

    name: str = "job"
    source: str | None = None
    program: "GeneratedProgram | None" = None
    #: content hash recorded in checkpoint metadata (filled by the
    #: manager when it compiles ``source`` itself)
    model_hash: str | None = None
    backend: str = "python"
    jacobian: bool = False
    t_span: tuple[float, float] = (0.0, 1.0)
    method: str = "rk45"
    rtol: float = 1e-6
    atol: float = 1e-9
    y0: np.ndarray | None = None
    params: np.ndarray | None = None
    executor: str = "serial"
    workers: int = 2
    executor_options: dict[str, Any] = field(default_factory=dict)
    fault_injector: "FaultInjector | None" = None
    deadline: float | None = None
    retry: JobRetryPolicy = field(default_factory=JobRetryPolicy)
    recovery: "RecoveryPolicy | None" = None
    checkpoint: str | Path | None = None
    checkpoint_every: int = 25
    checkpoint_keep: int = 3
    resume: str | Path | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if (self.source is None) == (self.program is None):
            raise ValueError(
                "exactly one of source/program must be provided"
            )
        if self.executor not in EXECUTOR_TIERS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from "
                f"{EXECUTOR_TIERS}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass
class JobAttempt:
    """Outcome record of one attempt within a job."""

    index: int
    executor: str
    outcome: str = "running"  # "completed" | "failed" | "deadline"
    reason: str = ""
    resumed_from_t: float | None = None


@dataclass
class Job:
    """A supervised job and everything that happened to it."""

    job_id: int
    spec: JobSpec
    state: str = "pending"
    attempts: list[JobAttempt] = field(default_factory=list)
    executor_used: str | None = None
    result: "SolverResult | None" = None
    failure: JobFailure | None = None

    @property
    def completed(self) -> bool:
        return self.state == "completed"

    def raise_for_failure(self) -> None:
        if self.failure is not None:
            raise self.failure


class JobManager:
    """Runs :class:`JobSpec` instances under full supervision.

    ``workdir`` holds per-job checkpoint files (a private temp directory
    by default, removed on :meth:`close`); ``cache`` is the shared
    :class:`~repro.compiler.cache.ArtifactCache` for ``source`` jobs —
    corrupted entries are quarantined and recompiled transparently.
    ``clock``/``sleep`` are injectable for tests; ``storage_faults``
    threads the chaos harness's :class:`StorageFaultInjector` into every
    checkpoint write the manager makes.
    """

    def __init__(
        self,
        events: RuntimeEvents | None = None,
        cache=None,
        workdir: str | Path | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        breakers: dict[str, CircuitBreaker] | None = None,
        failure_threshold: int = 3,
        circuit_cooldown: float = 30.0,
        storage_faults: "StorageFaultInjector | None" = None,
    ) -> None:
        self.events = events if events is not None else RuntimeEvents()
        self.cache = cache
        self.clock = clock
        self.sleep = sleep
        self.storage_faults = storage_faults
        self._own_workdir = workdir is None
        self.workdir = Path(
            tempfile.mkdtemp(prefix="repro-jobs-") if workdir is None
            else workdir
        )
        self.workdir.mkdir(parents=True, exist_ok=True)
        if breakers is None:
            breakers = {
                tier: CircuitBreaker(
                    tier, failure_threshold=failure_threshold,
                    cooldown=circuit_cooldown, clock=clock,
                    events=self.events,
                )
                for tier in EXECUTOR_TIERS if tier != "serial"
            }
        self.breakers = breakers
        self._next_id = 0
        self.jobs: list[Job] = []
        self.completed = 0
        self.failed = 0

    # -- public API --------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Run ``spec`` to a terminal state; never raises for job failures
        (inspect ``job.failure`` / call ``job.raise_for_failure()``)."""
        job = Job(job_id=self._next_id, spec=spec)
        self._next_id += 1
        self.jobs.append(job)
        self.events.record(
            "job_submitted", job=job.job_id, name=spec.name,
            executor=spec.executor, method=spec.method,
            deadline=spec.deadline,
        )
        try:
            self._run_job(job)
        finally:
            if job.state == "completed":
                self.completed += 1
            else:
                self.failed += 1
        return job

    def run(self, spec: JobSpec) -> "SolverResult":
        """Run ``spec``; return the solver result or raise the failure."""
        job = self.submit(spec)
        job.raise_for_failure()
        assert job.result is not None
        return job.result

    def close(self) -> None:
        """Remove the manager-owned checkpoint directory."""
        if self._own_workdir and self.workdir.exists():
            shutil.rmtree(self.workdir, ignore_errors=True)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def summary(self) -> str:
        open_circuits = [
            name for name, b in self.breakers.items() if b.state != "closed"
        ]
        text = (
            f"{len(self.jobs)} job(s): {self.completed} completed, "
            f"{self.failed} failed"
        )
        if open_circuits:
            text += f"; circuits not closed: {', '.join(sorted(open_circuits))}"
        return text

    # -- internals ---------------------------------------------------------

    def _fail(self, job: Job, kind: str, reason: str,
              cause: BaseException | None = None) -> None:
        job.failure = JobFailure(
            job.job_id, job.spec.name, kind, len(job.attempts), reason,
            cause,
        )
        job.state = "failed"
        self.events.record(
            "job_failed", job=job.job_id, failure_kind=kind,
            attempts=len(job.attempts), reason=reason,
        )

    def _classify(self, exc: BaseException) -> str:
        from ..compiler import CompileError
        from ..language.errors import SourceError
        from ..model import ModelError
        from ..solver.recovery import SolverFailure

        if isinstance(exc, SolverFailure):
            return "solver"
        if isinstance(exc, (CompileError, ModelError, SourceError)):
            return "compile"
        return "runtime"

    def _route(self, job: Job) -> str:
        """Pick the healthiest tier at or below the requested one."""
        requested = job.spec.executor
        start = EXECUTOR_TIERS.index(requested)
        for tier in EXECUTOR_TIERS[start:]:
            breaker = self.breakers.get(tier)
            if breaker is None or breaker.allow():
                if tier != requested:
                    self.events.record(
                        "job_rerouted", job=job.job_id,
                        requested=requested, routed=tier,
                    )
                return tier
        return "serial"  # unreachable: serial has no breaker

    def _checkpoint_path(self, job: Job) -> Path:
        if job.spec.checkpoint is not None:
            return Path(job.spec.checkpoint)
        return self.workdir / f"job-{job.job_id}.ckpt"

    def _compile(self, spec: JobSpec):
        from ..compiler import CompileOptions, compile_context

        assert spec.source is not None
        options = CompileOptions(
            backend=spec.backend, jacobian=spec.jacobian, cache=self.cache,
        )
        ctx = compile_context(source=spec.source, options=options)
        return ctx.program, ctx.model_hash

    def _build_rhs(self, job: Job, program: "GeneratedProgram", tier: str):
        """The solver-facing RHS callable plus its close() hook."""
        spec = job.spec
        params = (
            np.asarray(spec.params, dtype=float)
            if spec.params is not None else program.param_vector()
        )
        if tier == "serial":
            if spec.fault_injector is not None:
                from .parallel_rhs import ParallelRHS
                from .supervisor import SerialExecutor

                facade = ParallelRHS(
                    program,
                    SerialExecutor(program, injector=spec.fault_injector,
                                   events=self.events),
                    params=params,
                )
                return facade, facade.close
            if spec.backend == "numpy":
                return program.make_rhs_batch(params), None
            return program.make_rhs(params), None

        from .parallel_rhs import ParallelRHS

        if tier == "thread":
            from .supervisor import ThreadedExecutor as executor_cls
        else:
            from .process_executor import ProcessExecutor as executor_cls
        executor = executor_cls(
            program, num_workers=spec.workers,
            injector=spec.fault_injector, events=self.events,
            **spec.executor_options,
        )
        facade = ParallelRHS(program, executor, params=params)
        return facade, facade.close

    def _load_resume(self, job: Job, path: Path, required: bool = False):
        """Newest valid checkpoint generation at ``path``, or ``None``."""
        try:
            return load_checkpoint(
                path, fallback=True, keep=job.spec.checkpoint_keep,
                events=self.events,
            )
        except CheckpointError as exc:
            if required:
                raise
            if path.exists():
                # Present but unreadable in every generation: that is a
                # storage incident worth surfacing, not silence.
                self.events.record(
                    "checkpoint_fallback", job=job.job_id, path=str(path),
                    used=None, reason=str(exc),
                )
            return None

    def _run_job(self, job: Job) -> None:
        from ..solver import solve_ivp
        from ..solver.recovery import SolverFailure  # noqa: F401 (classify)

        spec = job.spec
        job.state = "running"
        rng = np.random.default_rng((spec.seed, job.job_id))
        deadline_at = (
            self.clock() + spec.deadline if spec.deadline is not None
            else None
        )
        ckpt_path = self._checkpoint_path(job)
        resume = None
        if spec.resume is not None:
            try:
                resume = load_checkpoint(
                    spec.resume, fallback=True,
                    keep=spec.checkpoint_keep, events=self.events,
                )
            except CheckpointError as exc:
                self._fail(job, "runtime", f"cannot resume: {exc}", exc)
                return

        program = spec.program
        model_hash = spec.model_hash
        attempt_index = 0
        while True:
            attempt_index += 1
            if deadline_at is not None and self.clock() >= deadline_at:
                self._fail(
                    job, "deadline",
                    f"deadline of {spec.deadline:g}s elapsed before "
                    f"attempt {attempt_index}",
                )
                return
            tier = self._route(job)
            breaker = self.breakers.get(tier)
            attempt = JobAttempt(index=attempt_index, executor=tier)
            job.attempts.append(attempt)
            job.executor_used = tier
            self.events.record(
                "job_attempt", job=job.job_id, attempt=attempt_index,
                executor=tier,
                resumed=(None if resume is None else resume.t),
            )
            close_rhs = None
            try:
                if program is None:
                    program, model_hash = self._compile(spec)
                f, close_rhs = self._build_rhs(job, program, tier)
                if deadline_at is not None:
                    f = DeadlineGuard(
                        f, deadline_at, spec.deadline, job.job_id,
                        clock=self.clock,
                    )
                checkpointer = Checkpointer(
                    ckpt_path, every=spec.checkpoint_every,
                    events=self.events, keep=spec.checkpoint_keep,
                    faults=self.storage_faults,
                    meta={
                        "job": job.job_id, "name": spec.name,
                        "model_hash": model_hash,
                    },
                )
                method = resume.method if resume is not None else spec.method
                if resume is not None:
                    attempt.resumed_from_t = float(resume.t)
                    self.events.record(
                        "checkpoint_resumed", job=job.job_id,
                        t=float(resume.t), method=method,
                    )
                result = solve_ivp(
                    f, spec.t_span,
                    (spec.y0 if spec.y0 is not None
                     else program.start_vector()),
                    method=method, rtol=spec.rtol, atol=spec.atol,
                    recovery=spec.recovery, checkpointer=checkpointer,
                    resume=resume,
                )
                if not result.success:
                    raise RuntimeError(
                        f"solver reported failure: {result.message}"
                    )
            except JobDeadlineExceeded as exc:
                attempt.outcome = "deadline"
                attempt.reason = str(exc)
                # The deadline is the caller's whole-job budget: never
                # retried, and not held against the tier's breaker (a
                # tight budget is not tier sickness).
                self._fail(job, "deadline", str(exc), exc)
                return
            except (Exception, WorkerKill) as exc:
                # WorkerKill is a BaseException so executor internals
                # cannot swallow it, but when one reaches the supervisor
                # (a kill firing on the inline/degraded path) it is an
                # attempt crash like any other: classify and retry.
                attempt.outcome = "failed"
                attempt.reason = f"{type(exc).__name__}: {exc}"
                if breaker is not None:
                    breaker.record_failure(type(exc).__name__)
                retry_number = attempt_index  # retries so far == index
                if retry_number > spec.retry.max_retries:
                    self._fail(
                        job, self._classify(exc), attempt.reason, exc,
                    )
                    return
                job.state = "retrying"
                delay = spec.retry.delay(retry_number, rng)
                if deadline_at is not None:
                    remaining = deadline_at - self.clock()
                    if remaining <= 0:
                        self._fail(
                            job, "deadline",
                            f"deadline elapsed while backing off after "
                            f"{attempt.reason}", exc,
                        )
                        return
                    delay = min(delay, remaining)
                self.events.record(
                    "job_retry", job=job.job_id, attempt=attempt_index,
                    delay=round(delay, 6), reason=type(exc).__name__,
                )
                if delay > 0:
                    self.sleep(delay)
                # Resume from the newest checkpoint this job has written;
                # keep the previous resume point (e.g. spec.resume) when
                # the failed attempt died before its first checkpoint.
                fresh = self._load_resume(job, ckpt_path)
                if fresh is not None:
                    resume = fresh
                continue
            else:
                if breaker is not None:
                    breaker.record_success()
                job.result = result
                job.state = "completed"
                self.events.record(
                    "job_completed", job=job.job_id,
                    attempts=attempt_index, executor=tier,
                    steps=result.stats.naccepted,
                )
                return
            finally:
                if close_rhs is not None:
                    close_rhs()
