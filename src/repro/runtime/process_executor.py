"""Process-based supervisor/worker execution with shared-memory state.

:class:`ProcessExecutor` is the multi-core counterpart of
:class:`~repro.runtime.supervisor.ThreadedExecutor`: a pool of persistent
OS worker *processes* evaluates the generated per-task RHS functions each
round, sidestepping the GIL so the paper's wall-clock speedup claim can
be measured on real hardware rather than only in the discrete-event
simulator.

State exchange is the supervisor↔worker broadcast the paper times in
section 4, implemented the cheap way Voliansky & Pranolo (arXiv:1908.02244)
show it must be for object-level parallelism to pay off:

* the state vector ``y``, parameter vector ``p``, results buffer ``res``,
  per-task wall times and worker heartbeats all live in
  :mod:`multiprocessing.shared_memory` blocks; workers attach NumPy views
  once at startup and never again,
* per round the supervisor broadcasts only a tiny control tuple
  ``(epoch, round_index, t, task_ids)`` over a per-worker duplex pipe —
  no array ever crosses a pipe, no per-round pickling of ``y``/``res``,
* workers cannot receive live function objects (modules created via
  ``exec`` do not pickle), so each worker re-creates the generated module
  from its :class:`~repro.codegen.program.ProgramSpec` — source text plus
  layout integers — in its own interpreter at startup.

Fault tolerance (parity with the threaded pool)
-----------------------------------------------
Thread ``is_alive()`` has no meaning across processes; liveness is
instead established by a *heartbeat protocol*: every worker runs a tiny
daemon thread bumping a per-worker counter in the shared heartbeat block
every ``heartbeat_interval`` seconds, and the supervisor declares a
worker dead when its process has exited **or** its heartbeat has not
advanced within ``heartbeat_timeout``.  Each worker has its own pipe, so
a worker killed with ``SIGKILL`` mid-round cannot corrupt a shared queue
or deadlock the barrier — its pipe simply reports EOF (or its heartbeat
goes stale) and the supervisor fails its tasks over:
retry on the original worker → reassignment to an idle healthy worker →
inline execution on the supervisor → degradation to serial once fewer
than ``min_workers`` remain, with every incident recorded in
:class:`~repro.runtime.events.RuntimeEvents`.  Workers that out-wait the
bounded round timeout are ``kill()``-ed before their tasks are re-run, so
an abandoned worker can never scribble a stale result into the shared
buffer of a later round.

Re-execution is bit-safe for the same reason as in the threaded pool:
tasks are pure functions of ``(t, y, p)`` writing disjoint ``res`` slots,
so every recovered round is bit-identical to :class:`SerialExecutor`.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import warnings
from multiprocessing import connection, shared_memory

import numpy as np

from ..codegen.program import GeneratedProgram, ProgramSpec
from ..schedule.lpt import Schedule, lpt_schedule
from .events import RuntimeEvents
from .faults import FaultInjector, FaultSpec
from .supervisor import RetryPolicy, TaskFailure, dependency_levels

__all__ = ["ProcessExecutor", "SHM_PREFIX"]

#: prefix of every shared-memory segment the executor creates; lets CI
#: (and operators) audit /dev/shm for leaks after a run
SHM_PREFIX = "repro_px"

#: rows in the stage-state / stage-result shared blocks; bounds the
#: solver stage count a K-stage round can carry (DOPRI needs 7)
MAX_STAGE_ROWS = 8

#: progress ticks are namespaced per epoch so a straggler from an
#: abandoned round can never satisfy (or break) a later round's barrier
_TICK_STRIDE = 1 << 20


class _StageAbort(RuntimeError):
    """Internal marker: this K-stage round was aborted pool-wide."""


class _NonFiniteOutput(RuntimeError):
    """Internal marker: a task completed but produced NaN/Inf outputs."""


class _WorkerFaultArbiter:
    """Worker-side fault matching against a pickled FaultSpec plan.

    Mirrors :meth:`FaultInjector._claim` with worker-local burn-out
    counters (process pools cannot share the supervisor's lock); specs
    pinned to another worker never match, un-pinned specs burn out
    independently per worker.
    """

    def __init__(self, plan: tuple[FaultSpec, ...], worker_id: int) -> None:
        self.plan = plan
        self.worker_id = worker_id
        self._remaining = {i: spec.count for i, spec in enumerate(plan)}

    def claim(self, task_id: int, round_index: int) -> FaultSpec | None:
        for i, spec in enumerate(self.plan):
            if spec.task_id != task_id:
                continue
            if (spec.round_index is not None
                    and spec.round_index != round_index):
                continue
            if spec.worker is not None and spec.worker != self.worker_id:
                continue
            left = self._remaining[i]
            if left == 0:
                continue
            if left > 0:
                self._remaining[i] = left - 1
            return spec
        return None


def _worker_main(
    worker_id: int,
    spec: ProgramSpec,
    shm_names: dict,
    num_params: int,
    num_workers: int,
    conn,
    fault_plan: tuple[FaultSpec, ...],
    heartbeat_interval: float,
) -> None:
    """Worker process entry point: attach, rebuild, serve rounds forever."""
    # Attaching re-registers each segment with the (shared, set-backed)
    # resource tracker — a no-op; the supervisor owns and unlinks them.
    segments = {
        key: shared_memory.SharedMemory(name=name)
        for key, name in shm_names.items()
    }
    n_res = spec.num_states + spec.num_partials
    y = np.ndarray((spec.num_states,), dtype=np.float64,
                   buffer=segments["y"].buf)
    p = np.ndarray((num_params,), dtype=np.float64,
                   buffer=segments["p"].buf)
    res = np.ndarray((n_res,), dtype=np.float64, buffer=segments["res"].buf)
    times = np.ndarray((spec.num_tasks,), dtype=np.float64,
                       buffer=segments["times"].buf)
    heartbeats = np.ndarray((num_workers,), dtype=np.int64,
                            buffer=segments["hb"].buf)
    kst = np.ndarray((MAX_STAGE_ROWS, max(1, spec.num_states)),
                     dtype=np.float64, buffer=segments["kst"].buf)
    sres = np.ndarray((MAX_STAGE_ROWS, max(1, n_res)),
                      dtype=np.float64, buffer=segments["sres"].buf)
    prog = np.ndarray((num_workers,), dtype=np.int64,
                      buffer=segments["prog"].buf)
    ctl = np.ndarray((2,), dtype=np.int64, buffer=segments["ctl"].buf)

    # Orphan watchdog: under fork, a worker inherits the supervisor-side
    # pipe ends of workers spawned before it, so supervisor death does
    # NOT surface as EOF on ``conn.recv()`` — without this check a
    # SIGKILL'd supervisor leaves workers blocked forever, and the
    # still-open resource-tracker pipe keeps the shm segments alive too.
    supervisor_pid = os.getppid()

    def beat_forever() -> None:
        while True:
            heartbeats[worker_id] += 1
            if os.getppid() != supervisor_pid:
                os._exit(2)  # reparented: the supervisor is gone
            time.sleep(heartbeat_interval)

    threading.Thread(target=beat_forever, daemon=True,
                     name=f"heartbeat-{worker_id}").start()

    tasks = spec.build_tasks()
    arbiter = _WorkerFaultArbiter(fault_plan, worker_id)
    task_slots = spec.task_slots

    def run_one(tid: int, round_index: int, ti: float, y_vec, out) -> None:
        """One task with fault injection, against an arbitrary result row."""
        fault = arbiter.claim(tid, round_index)
        started = time.perf_counter()
        if fault is None:
            tasks[tid](ti, y_vec, p, out)
        else:
            if fault.mode == "raise":
                raise RuntimeError(
                    f"injected failure in task {tid} (round {round_index})"
                )
            if fault.mode == "kill":
                if hasattr(signal, "SIGKILL"):
                    os.kill(os.getpid(), signal.SIGKILL)
                os._exit(1)
            if fault.mode == "hang":
                time.sleep(fault.hang_seconds)
            tasks[tid](ti, y_vec, p, out)
            if fault.mode == "nan":
                for s in task_slots[tid]:
                    out[s] = np.nan
            elif fault.mode == "inf":
                for s in task_slots[tid]:
                    out[s] = np.inf
            elif fault.mode == "corrupt":
                slots = task_slots[tid]
                target = (fault.corrupt_slot
                          if fault.corrupt_slot is not None
                          else (slots[0] if slots else None))
                if target is not None:
                    out[target] = fault.corrupt_value
        times[tid] += time.perf_counter() - started

    def serve_stages(job) -> None:
        """One optimistic K-stage round (see ProcessExecutor.evaluate_stages).

        Synchronisation is a progress-vector barrier in shared memory:
        after each dependency level the worker bumps its own (single
        writer) ``prog`` slot and spin-waits until every participant has
        reached the same tick.  Ticks are namespaced by epoch so a
        straggler from an abandoned round can neither satisfy nor break a
        later round's barrier.  Any fault publishes the epoch in the
        shared abort flag, so the whole pool bails out in one phase and
        the supervisor re-runs the chunk through the hardened path.
        """
        (_, epoch, round_index, t, h_dir, start, stop, a_rows_t, c_t,
         my_levels, participants, phase_timeout) = job
        c = np.asarray(c_t, dtype=np.float64)
        a_rows = [np.asarray(row, dtype=np.float64) for row in a_rows_t]
        n = spec.num_states
        # Private contiguous stage rows: matmul must see the exact serial
        # operand layout for bit-identical results.
        kk = np.empty((len(c), n), dtype=np.float64)
        kk[:start] = kst[:start, :n]
        y_stage = np.empty(n, dtype=np.float64)
        base = epoch * _TICK_STRIDE
        tick = 0
        error_name: str | None = None
        failed_tid: int | None = None
        tid: int | None = None

        def phase_barrier() -> None:
            nonlocal tick
            tick += 1
            prog[worker_id] = base + tick
            deadline = time.monotonic() + phase_timeout
            spins = 0
            while True:
                if ctl[0] == epoch:
                    raise _StageAbort
                if all(prog[w] >= base + tick for w in participants):
                    return
                if time.monotonic() > deadline:
                    ctl[0] = epoch
                    raise _StageAbort
                spins += 1
                time.sleep(0 if spins < 200 else 0.0001)

        try:
            for i in range(start, stop):
                np.matmul(kk[:i].T, a_rows[i], out=y_stage)
                y_stage *= h_dir
                y_stage += y
                ti = t + c[i] * h_dir
                row = sres[i - start]
                for level_tasks in my_levels:
                    for tid in level_tasks:
                        run_one(tid, round_index, ti, y_stage, row)
                    tid = None
                    phase_barrier()
                kk[i] = row[:n]
        except _StageAbort:
            error_name = "StageAborted"
        except BaseException as exc:  # noqa: BLE001 - forwarded
            ctl[0] = epoch
            error_name = type(exc).__name__
            failed_tid = tid
        try:
            # 6-tuple like the legacy reply so a stale drain can't crash
            # the level loop's unpack; the "stages" tag lands in the
            # epoch slot and is dropped there as a mismatch.
            conn.send(("stages", worker_id, epoch, error_name,
                       failed_tid, ()))
        except (BrokenPipeError, OSError):
            os._exit(0)

    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:
            return
        if job[0] == "stages":
            serve_stages(job)
            continue
        epoch, round_index, t, task_ids = job
        completed: list[int] = []
        fired: list[tuple[int, str]] = []
        error_name: str | None = None
        failed_tid: int | None = None
        for tid in task_ids:
            fault = arbiter.claim(tid, round_index)
            start = time.perf_counter()
            try:
                if fault is None:
                    tasks[tid](t, y, p, res)
                else:
                    fired.append((tid, fault.mode))
                    if fault.mode == "raise":
                        raise RuntimeError(
                            f"injected failure in task {tid} "
                            f"(round {round_index})"
                        )
                    if fault.mode == "kill":
                        # A real crash: die without any farewell message.
                        if hasattr(signal, "SIGKILL"):
                            os.kill(os.getpid(), signal.SIGKILL)
                        os._exit(1)
                    if fault.mode == "hang":
                        time.sleep(fault.hang_seconds)
                    tasks[tid](t, y, p, res)
                    if fault.mode == "nan":
                        for s in task_slots[tid]:
                            res[s] = np.nan
                    elif fault.mode == "inf":
                        for s in task_slots[tid]:
                            res[s] = np.inf
                    elif fault.mode == "corrupt":
                        slots = task_slots[tid]
                        target = (fault.corrupt_slot
                                  if fault.corrupt_slot is not None
                                  else (slots[0] if slots else None))
                        if target is not None:
                            res[target] = fault.corrupt_value
            except BaseException as exc:  # noqa: BLE001 - forwarded
                error_name = type(exc).__name__
                failed_tid = tid
                break
            times[tid] = time.perf_counter() - start
            completed.append(tid)
        try:
            conn.send((epoch, worker_id, tuple(completed), error_name,
                       failed_tid, tuple(fired)))
        except (BrokenPipeError, OSError):
            return


class ProcessExecutor:
    """Persistent worker processes executing scheduled task lists.

    Drop-in peer of :class:`~repro.runtime.supervisor.SerialExecutor` and
    :class:`~repro.runtime.supervisor.ThreadedExecutor` behind
    :class:`~repro.runtime.parallel_rhs.ParallelRHS`: the same
    ``evaluate(t, y, p, res, schedule)`` contract, bit-identical numerics,
    measured per-task times for the semi-dynamic LPT, and the same
    retry → reassign → inline → degrade recovery ladder.  See the module
    docstring for the shared-memory layout and heartbeat protocol.
    """

    def __init__(
        self,
        program: GeneratedProgram,
        num_workers: int,
        *,
        injector: FaultInjector | None = None,
        events: RuntimeEvents | None = None,
        retry_policy: RetryPolicy | None = None,
        level_timeout: float = 30.0,
        validate_outputs: bool = True,
        min_workers: int = 1,
        join_timeout: float = 5.0,
        heartbeat_interval: float = 0.02,
        heartbeat_timeout: float = 5.0,
        start_method: str | None = None,
        startup_timeout: float = 30.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if level_timeout <= 0:
            raise ValueError("level_timeout must be positive")
        if min_workers < 0:
            raise ValueError("min_workers must be non-negative")
        if heartbeat_interval <= 0 or heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval > 0"
            )
        self.program = program
        self.num_workers = num_workers
        self._levels = dependency_levels(program.task_graph)
        self.last_task_times = np.zeros(program.num_tasks)

        self.events = events if events is not None else RuntimeEvents()
        self.injector = injector
        self.retry_policy = retry_policy or RetryPolicy()
        self.level_timeout = level_timeout
        self.validate_outputs = validate_outputs
        self.min_workers = min_workers
        self.join_timeout = join_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout

        #: supervisor-side task functions (inline fallback / degraded mode)
        self._tasks = (
            injector.wrap_tasks(program) if injector is not None
            else list(program.task_callables())
        )
        self._slots = [
            np.asarray(program.task_output_slots(tid), dtype=int)
            for tid in range(program.num_tasks)
        ]

        spec = program.rebuild_spec()
        self._num_params = int(program.param_vector().size)
        n_res = program.num_states + program.num_partials
        tag = f"{SHM_PREFIX}_{os.getpid()}_{id(self) & 0xFFFFFF:06x}"
        float_bytes = np.dtype(np.float64).itemsize
        int_bytes = np.dtype(np.int64).itemsize
        sizes = {
            "y": max(1, program.num_states) * float_bytes,
            "p": max(1, self._num_params) * float_bytes,
            "res": max(1, n_res) * float_bytes,
            "times": max(1, program.num_tasks) * float_bytes,
            "hb": num_workers * int_bytes,
            # K-stage round protocol: known k rows in, per-stage results
            # out, plus the progress-vector barrier and the abort flag
            "kst": MAX_STAGE_ROWS * max(1, program.num_states) * float_bytes,
            "sres": MAX_STAGE_ROWS * max(1, n_res) * float_bytes,
            "prog": num_workers * int_bytes,
            "ctl": 2 * int_bytes,
        }
        self._shms: dict[str, shared_memory.SharedMemory] = {}
        try:
            for key, size in sizes.items():
                self._shms[key] = shared_memory.SharedMemory(
                    create=True, name=f"{tag}_{key}", size=size
                )
        except Exception:
            self._release_shared_memory()
            raise
        self._y = np.ndarray((program.num_states,), dtype=np.float64,
                             buffer=self._shms["y"].buf)
        self._p = np.ndarray((self._num_params,), dtype=np.float64,
                             buffer=self._shms["p"].buf)
        self._res = np.ndarray((n_res,), dtype=np.float64,
                               buffer=self._shms["res"].buf)
        self._times = np.ndarray((program.num_tasks,), dtype=np.float64,
                                 buffer=self._shms["times"].buf)
        self._heartbeats = np.ndarray((num_workers,), dtype=np.int64,
                                      buffer=self._shms["hb"].buf)
        self._heartbeats[:] = 0
        self._kst = np.ndarray(
            (MAX_STAGE_ROWS, max(1, program.num_states)),
            dtype=np.float64, buffer=self._shms["kst"].buf)
        self._sres = np.ndarray(
            (MAX_STAGE_ROWS, max(1, n_res)),
            dtype=np.float64, buffer=self._shms["sres"].buf)
        self._prog = np.ndarray((num_workers,), dtype=np.int64,
                                buffer=self._shms["prog"].buf)
        self._ctl = np.ndarray((2,), dtype=np.int64,
                               buffer=self._shms["ctl"].buf)
        self._prog[:] = 0
        self._ctl[:] = 0
        #: rounds accumulated into last_task_times by the previous call
        #: (K for a stage chunk, 1 for a plain round); scheduler feeds
        #: divide by this to recover per-round task times
        self.last_times_rounds = 1

        fault_plan = tuple(injector.plan) if injector is not None else ()
        shm_names = {k: s.name for k, s in self._shms.items()}
        ctx = multiprocessing.get_context(start_method)
        self._procs: list = []
        self._conns: list = []
        self._closing = False
        self._epoch = 0
        self._round = -1
        self._dead: set[int] = set()
        self.degraded = False
        #: (heartbeat value, monotonic time it last advanced) per worker
        self._hb_seen: list[tuple[int, float]] = []
        try:
            for w in range(num_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(w, spec, shm_names, self._num_params, num_workers,
                          child_conn, fault_plan, heartbeat_interval),
                    daemon=True,
                    name=f"rhs-proc-{w}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception:
            self.close()
            raise
        now = time.monotonic()
        self._hb_seen = [(0, now) for _ in range(num_workers)]
        self._await_startup(startup_timeout)

    def _await_startup(self, timeout: float) -> None:
        """Block until every worker's heartbeat has started (module rebuilt,
        shared memory attached) so the first round's liveness window is not
        charged the pool's startup cost."""
        deadline = time.monotonic() + timeout
        waiting = set(range(self.num_workers))
        while waiting and time.monotonic() < deadline:
            for w in list(waiting):
                if self._heartbeats[w] > 0:
                    waiting.discard(w)
                elif not self._procs[w].is_alive():
                    self._mark_dead(w, "died during startup")
                    waiting.discard(w)
            if waiting:
                time.sleep(0.002)
        for w in waiting:
            self._mark_dead(w, "startup timeout")

    # -- liveness ---------------------------------------------------------------

    def _worker_alive(self, w: int) -> bool:
        if w in self._dead:
            return False
        if not self._procs[w].is_alive():
            return False
        value = int(self._heartbeats[w])
        seen, since = self._hb_seen[w]
        now = time.monotonic()
        if value != seen:
            self._hb_seen[w] = (value, now)
            return True
        return (now - since) <= self.heartbeat_timeout

    def _healthy_workers(self) -> list[int]:
        return [w for w in range(self.num_workers) if self._worker_alive(w)]

    def _mark_dead(self, worker_id: int, reason: str) -> None:
        if worker_id in self._dead:
            return
        self._dead.add(worker_id)
        # Make death final: an abandoned-but-running worker must never
        # write a stale result into the shared buffer of a later round.
        proc = self._procs[worker_id] if self._procs else None
        if proc is not None and proc.is_alive():
            proc.kill()
        self.events.record("worker_dead", worker=worker_id, reason=reason)
        if (not self.degraded
                and len(self._healthy_workers()) < max(self.min_workers, 1)):
            self.degraded = True
            self.events.record(
                "degraded", healthy=len(self._healthy_workers()),
                min_workers=self.min_workers,
            )
            warnings.warn(
                "ProcessExecutor degraded to serial execution: "
                f"{len(self._dead)} of {self.num_workers} workers dead",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- supervisor-side helpers -----------------------------------------------

    def _validate_task_outputs(self, tid: int) -> None:
        slots = self._slots[tid]
        if slots.size and not np.all(np.isfinite(self._res[slots])):
            raise _NonFiniteOutput(f"task {tid} produced non-finite output")

    def _run_inline(self, tid: int, t: float) -> None:
        """Execute one task on the supervisor (last-resort and degraded
        paths), against the shared-memory views, with timing + validation."""
        start = time.perf_counter()
        self._tasks[tid](t, self._y, self._p, self._res)
        self._times[tid] = time.perf_counter() - start
        if self.validate_outputs:
            self._validate_task_outputs(tid)

    def _run_level_serial(self, level: list[int], t: float) -> None:
        for tid in level:
            try:
                self._run_inline(tid, t)
            except _NonFiniteOutput as exc:
                raise TaskFailure(tid, exc, "non-finite output") from exc
            except Exception as exc:
                raise TaskFailure(tid, exc) from exc

    # -- the hardened barrier ---------------------------------------------------

    def _run_level(self, level: list[int], assignment, t: float,
                   round_index: int) -> None:
        policy = self.retry_policy
        self._epoch += 1
        epoch = self._epoch

        # Sweep before dispatch so a worker that died *between* rounds is
        # recorded as dead (not just silently remapped around).
        for w in range(self.num_workers):
            if w not in self._dead and not self._worker_alive(w):
                self._mark_dead(
                    w,
                    "heartbeat lost" if self._procs[w].is_alive()
                    else "process exited",
                )

        healthy = set(self._healthy_workers())
        outstanding: dict[int, list[int]] = {}
        pending: dict[int, list[int]] = {}
        for tid in level:
            w = assignment[tid]
            if w not in healthy:
                w = min(healthy, key=lambda h: len(pending.get(h, [])),
                        default=-1)
            pending.setdefault(w, []).append(tid)

        inline_tasks = pending.pop(-1, [])
        attempts: dict[int, int] = {tid: 0 for tid in level}
        reassigned: set[int] = set()

        def dispatch(worker_id: int, task_ids: list[int]) -> None:
            outstanding[worker_id] = list(task_ids)
            try:
                self._conns[worker_id].send(
                    (epoch, round_index, t, tuple(task_ids))
                )
            except (BrokenPipeError, OSError):
                outstanding.pop(worker_id, None)
                self._mark_dead(worker_id, "pipe closed")
                fail_over(task_ids, worker_id, None)

        def fail_over(task_ids: list[int], from_worker: int,
                      cause: BaseException | None) -> None:
            """Move tasks off ``from_worker`` (reassign or run inline)."""
            if not task_ids:
                return
            targets = [w for w in self._healthy_workers()
                       if w not in outstanding]
            fresh = [tid for tid in task_ids if tid not in reassigned]
            burnt = [tid for tid in task_ids if tid in reassigned]
            if fresh and targets:
                target = targets[0]
                for tid in fresh:
                    reassigned.add(tid)
                    attempts[tid] = 0
                self.events.record(
                    "task_reassigned", tasks=tuple(fresh),
                    from_worker=from_worker, to_worker=target,
                )
                dispatch(target, fresh)
            else:
                burnt = burnt + (fresh if not targets else [])
            if burnt:
                self.events.record(
                    "task_inline", tasks=tuple(burnt),
                    from_worker=from_worker,
                )
            for tid in burnt:
                try:
                    self._run_inline(tid, t)
                except _NonFiniteOutput as exc:
                    raise TaskFailure(
                        tid, cause or exc, "non-finite output"
                    ) from exc
                except Exception as exc:
                    raise TaskFailure(tid, exc) from exc

        for w, task_ids in list(pending.items()):
            dispatch(w, task_ids)
        fail_over(inline_tasks, -1, None)

        deadline = time.monotonic() + self.level_timeout
        while outstanding:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Round timeout: every still-outstanding worker is hung.
                # Kill and fail over; the kill makes stale writes impossible.
                for w in list(outstanding):
                    self.events.record(
                        "worker_timeout", worker=w,
                        tasks=tuple(outstanding[w]),
                        timeout=self.level_timeout,
                    )
                    task_ids = outstanding.pop(w)
                    self._mark_dead(w, "round timeout")
                    fail_over(task_ids, w, None)
                deadline = time.monotonic() + self.level_timeout
                continue

            ready = connection.wait(
                [self._conns[w] for w in outstanding],
                timeout=min(remaining, 0.05),
            )
            if not ready:
                # Heartbeat/liveness sweep: a SIGKILL'd worker never
                # replies; its process exit (or stale heartbeat) is the
                # only signal the supervisor gets.
                for w in list(outstanding):
                    if not self._worker_alive(w):
                        task_ids = outstanding.pop(w)
                        self._mark_dead(w, "heartbeat lost")
                        fail_over(task_ids, w, None)
                continue

            conn_to_worker = {id(self._conns[w]): w for w in outstanding}
            for conn in ready:
                w = conn_to_worker.get(id(conn))
                if w is None or w not in outstanding:
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    task_ids = outstanding.pop(w)
                    self._mark_dead(w, "process exited")
                    fail_over(task_ids, w, None)
                    continue
                msg_epoch, mw, completed, error_name, failed_tid, fired = msg
                if msg_epoch != epoch or mw != w:
                    continue  # stale reply from an abandoned level
                task_ids = outstanding.pop(w)
                for ftid, mode in fired:
                    self.events.record(
                        "fault_injected", task=ftid, mode=mode,
                        round=round_index, worker=w,
                    )

                bad_output: int | None = None
                if self.validate_outputs:
                    for tid in completed:
                        try:
                            self._validate_task_outputs(tid)
                        except _NonFiniteOutput:
                            bad_output = tid
                            error_name = "_NonFiniteOutput"
                            failed_tid = tid
                            self.events.record(
                                "task_nonfinite", task=tid, worker=w,
                            )
                            break

                if error_name is None and bad_output is None:
                    continue  # worker finished its list cleanly

                assert failed_tid is not None
                if bad_output is None:
                    self.events.record(
                        "task_error", task=failed_tid, worker=w,
                        error=error_name,
                    )
                done_ok = (tuple(completed) if bad_output is None
                           else tuple(completed[: completed.index(bad_output)]))
                still_todo = [tid for tid in task_ids if tid not in done_ok]
                attempts[failed_tid] += 1

                if (attempts[failed_tid] < policy.max_attempts
                        and self._worker_alive(w)):
                    delay = policy.delay(attempts[failed_tid])
                    if delay > 0:
                        time.sleep(delay)
                    self.events.record(
                        "task_retry", task=failed_tid, worker=w,
                        attempt=attempts[failed_tid] + 1,
                    )
                    dispatch(w, still_todo)
                else:
                    fail_over(still_todo, w, None)

    # -- public API -------------------------------------------------------------

    def evaluate(
        self,
        t: float,
        y: np.ndarray,
        p: np.ndarray,
        res: np.ndarray,
        schedule: Schedule | None = None,
    ) -> None:
        """Run one RHS round under ``schedule`` (defaults to LPT)."""
        if self._closing:
            raise RuntimeError("executor is closed")
        if schedule is None:
            schedule = lpt_schedule(self.program.task_graph, self.num_workers)
        if schedule.num_workers != self.num_workers:
            raise ValueError(
                f"schedule is for {schedule.num_workers} workers, pool has "
                f"{self.num_workers}"
            )
        p = np.asarray(p, dtype=float)
        if p.size != self._num_params:
            raise ValueError(
                f"parameter vector has {p.size} entries, program expects "
                f"{self._num_params}"
            )
        # Broadcast: one memcpy each into the shared blocks; workers see
        # the new state without any message carrying an array.
        self._y[:] = y
        self._p[:] = p
        self._res[:] = res
        self._times[:] = 0.0
        self._round += 1
        round_index = (
            self.injector.begin_round() if self.injector is not None
            else self._round
        )
        try:
            if self.degraded or not self._healthy_workers():
                if not self.degraded:
                    self.degraded = True
                    self.events.record("degraded", healthy=0,
                                       min_workers=self.min_workers)
                for level in self._levels:
                    self._run_level_serial(level, t)
            else:
                for level in self._levels:
                    if self.degraded:
                        self._run_level_serial(level, t)
                    else:
                        self._run_level(level, schedule.assignment, t,
                                        round_index)
        finally:
            # Gather: results and measured times come back by memcpy too.
            res[:] = self._res
            self.last_task_times[:] = self._times
            self.last_times_rounds = 1

    # -- K-stage rounds ---------------------------------------------------------

    def _fallback_stages(
        self, t, y, p, k, a_rows, c, h_dir, start, stop, res, schedule,
    ) -> None:
        """Pessimistic path: one hardened ``evaluate`` round per stage,
        recomputing stage state with the exact serial operand layout so
        recovered chunks stay bit-identical."""
        n = self.program.num_states
        y_stage = np.empty(n, dtype=float)
        for i in range(start, stop):
            np.matmul(k[:i].T, a_rows[i], out=y_stage)
            y_stage *= h_dir
            y_stage += y
            res.fill(0.0)
            self.evaluate(t + c[i] * h_dir, y_stage, p, res, schedule)
            k[i] = res[:n]
        self.last_times_rounds = 1

    def evaluate_stages(
        self, t: float, y: np.ndarray, p: np.ndarray, k: np.ndarray,
        a_rows, c, h_dir: float, start: int, stop: int, res: np.ndarray,
        schedule: Schedule | None = None,
    ) -> None:
        """Evaluate RK stages ``start .. stop-1`` with one pipe message per
        worker instead of one per stage.

        The optimistic fast path ships the whole chunk up front: workers
        advance stage-local state themselves and synchronise per
        dependency level through the shared progress vector — no
        supervisor round-trip, no array ever crossing a pipe.  On ANY
        fault (worker death, stale heartbeat, exception, barrier timeout,
        non-finite output) the round aborts via the shared flag and the
        chunk re-runs through :meth:`_fallback_stages`, which preserves
        the full retry → reassign → inline → degrade ladder.  Safe
        because tasks are pure functions of ``(t, y, p)`` writing
        disjoint slots: re-execution writes the same bytes.
        """
        if self._closing:
            raise RuntimeError("executor is closed")
        if stop <= start:
            return
        if schedule is None:
            schedule = lpt_schedule(self.program.task_graph, self.num_workers)
        if schedule.num_workers != self.num_workers:
            raise ValueError(
                f"schedule is for {schedule.num_workers} workers, pool has "
                f"{self.num_workers}"
            )
        p = np.asarray(p, dtype=float)
        if p.size != self._num_params:
            raise ValueError(
                f"parameter vector has {p.size} entries, program expects "
                f"{self._num_params}"
            )
        self._round += 1
        round_index = (
            self.injector.begin_round() if self.injector is not None
            else self._round
        )
        # Sweep before dispatch so a worker that died between rounds is
        # recorded as dead, not just silently remapped around.
        for w in range(self.num_workers):
            if w not in self._dead and not self._worker_alive(w):
                self._mark_dead(
                    w,
                    "heartbeat lost" if self._procs[w].is_alive()
                    else "process exited",
                )
        healthy = self._healthy_workers()
        if (self.degraded or not healthy or len(c) > MAX_STAGE_ROWS):
            self._fallback_stages(t, y, p, k, a_rows, c, h_dir, start, stop,
                                  res, schedule)
            return

        # Per-worker task lists per level (dead workers' tasks remapped).
        alive = set(healthy)
        num_levels = len(self._levels)
        worker_levels: dict[int, list[list[int]]] = {}
        for li, level in enumerate(self._levels):
            for tid in level:
                w = schedule.assignment[tid]
                if w not in alive:
                    w = min(alive, key=lambda h: sum(
                        len(lv) for lv in worker_levels.get(h, ())
                    ))
                rows = worker_levels.setdefault(
                    w, [[] for _ in range(num_levels)]
                )
                rows[li].append(tid)
        participants = sorted(worker_levels)
        if not participants:
            self._fallback_stages(t, y, p, k, a_rows, c, h_dir, start, stop,
                                  res, schedule)
            return

        nstages = stop - start
        n = self.program.num_states
        # Broadcast: state, parameters and known stage rows by memcpy.
        self._y[:] = y
        self._p[:] = p
        self._kst[:start, :n] = k[:start]
        self._sres[:nstages] = 0.0
        self._times[:] = 0.0
        self._epoch += 1
        epoch = self._epoch
        a_rows_t = tuple(tuple(float(v) for v in row) for row in a_rows)
        c_t = tuple(float(v) for v in c)
        ok = True
        waiting: set[int] = set()
        for w in participants:
            try:
                self._conns[w].send((
                    "stages", epoch, round_index, float(t), float(h_dir),
                    start, stop, a_rows_t, c_t,
                    tuple(tuple(lv) for lv in worker_levels[w]),
                    tuple(participants), self.level_timeout,
                ))
                waiting.add(w)
            except (BrokenPipeError, OSError):
                self._mark_dead(w, "pipe closed")
                ok = False
        if not ok:
            self._ctl[0] = epoch  # missing participant: break the barrier

        deadline = (time.monotonic()
                    + self.level_timeout * nstages * num_levels + 1.0)
        while ok and waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                ok = False
                break
            ready = connection.wait(
                [self._conns[w] for w in waiting],
                timeout=min(remaining, 0.05),
            )
            if not ready:
                for w in list(waiting):
                    if not self._worker_alive(w):
                        # A crashed participant never replies and never
                        # reaches the barrier; break it for the others.
                        # Its tasks move to the survivors when the chunk
                        # re-runs through the hardened path.
                        waiting.discard(w)
                        self._mark_dead(w, "heartbeat lost")
                        self.events.record(
                            "task_reassigned",
                            tasks=tuple(tid for lv in worker_levels[w]
                                        for tid in lv),
                            from_worker=w, to_worker=-1,
                        )
                        ok = False
                continue
            conn_to_worker = {id(self._conns[w]): w for w in waiting}
            for conn in ready:
                w = conn_to_worker.get(id(conn))
                if w is None or w not in waiting:
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    waiting.discard(w)
                    self._mark_dead(w, "process exited")
                    ok = False
                    continue
                if msg[0] != "stages":
                    continue  # stale legacy reply from an abandoned level
                _, mw, msg_epoch, error_name, failed_tid, _ = msg
                if msg_epoch != epoch or mw != w:
                    continue  # straggler from an abandoned stage round
                waiting.discard(w)
                if error_name is not None:
                    ok = False
                    if error_name != "StageAborted":
                        self.events.record(
                            "stage_task_error", task=failed_tid, worker=w,
                            error=error_name,
                        )
        if ok and self.validate_outputs and not np.all(
            np.isfinite(self._sres[:nstages])
        ):
            ok = False
            self.events.record("stage_nonfinite", start=start, stop=stop)
        if not ok:
            self._ctl[0] = epoch  # release any participant still spinning
            self.events.record("stage_round_aborted", start=start, stop=stop)
            # Bump the epoch so straggler replies are recognisably stale.
            self._epoch += 1
            self._fallback_stages(t, y, p, k, a_rows, c, h_dir, start, stop,
                                  res, schedule)
            return
        k[start:stop] = self._sres[:nstages, :n]
        res[:] = self._sres[nstages - 1]
        self.last_task_times[:] = self._times
        self.last_times_rounds = nstages

    def measure_dispatch_overhead(self, trials: int = 5) -> float:
        """One-shot microcalibration: seconds per empty dispatch round.

        Times a full supervisor→workers→supervisor pipe round-trip
        carrying no tasks — the fixed cost every per-stage round pays,
        and what the K-stage auto-tuner amortises."""
        healthy = self._healthy_workers()
        if self.degraded or not healthy:
            return 0.0
        samples = []
        for _ in range(max(1, trials)):
            self._epoch += 1
            epoch = self._epoch
            t0 = time.perf_counter()
            waiting = set()
            for w in healthy:
                try:
                    self._conns[w].send((epoch, self._round, 0.0, ()))
                    waiting.add(w)
                except (BrokenPipeError, OSError):
                    self._mark_dead(w, "pipe closed")
            deadline = time.monotonic() + self.level_timeout
            while waiting and time.monotonic() < deadline:
                ready = connection.wait(
                    [self._conns[w] for w in waiting], timeout=0.05,
                )
                if not ready:
                    waiting = {w for w in waiting if self._worker_alive(w)}
                    continue
                conn_to_worker = {id(self._conns[w]): w for w in waiting}
                for conn in ready:
                    w = conn_to_worker.get(id(conn))
                    if w is None:
                        continue
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        waiting.discard(w)
                        continue
                    if msg[0] == epoch and msg[1] == w:
                        waiting.discard(w)
            samples.append(time.perf_counter() - t0)
            healthy = [w for w in healthy if self._worker_alive(w)]
            if not healthy:
                break
        return float(np.median(samples))

    def close(self) -> None:
        """Shut the pool down; idempotent and safe under a half-dead pool.

        Live workers get a farewell ``None`` and ``join_timeout`` to exit;
        stragglers are killed (processes, unlike threads, can be).  All
        shared-memory segments are closed and unlinked, so a clean close
        leaks nothing into ``/dev/shm``."""
        if self._closing:
            return
        self._closing = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w, proc in enumerate(self._procs):
            proc.join(timeout=self.join_timeout)
            if proc.is_alive():
                self.events.record("close_timeout", worker=w,
                                   timeout=self.join_timeout)
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._release_shared_memory()

    def _release_shared_memory(self) -> None:
        # NumPy views pin the mapped buffer; drop them or close() raises
        # BufferError ("cannot close exported pointers exist").
        self._y = self._p = self._res = None
        self._times = self._heartbeats = None
        self._kst = self._sres = self._prog = self._ctl = None
        for shm in self._shms.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view leaked elsewhere
                pass
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._shms = {}

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort leak guard
        try:
            if not self._closing:
                self.close()
        except Exception:
            pass
