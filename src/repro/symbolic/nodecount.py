"""Expression metrics: operation counts, depth, and flop-class histograms.

These feed the code generator's cost model (section 3.2.3: "One method …
is to predict the estimated execution time (or weight) of each task"): the
static task weight is a weighted sum over the operation histogram.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .expr import (
    Add,
    BoolOp,
    Call,
    Const,
    Expr,
    ITE,
    Mul,
    Pow,
    Reduce,
    Rel,
)


__all__ = ["OpHistogram", "op_histogram", "op_count", "depth"]


@dataclass(frozen=True)
class OpHistogram:
    """Counts of scalar operations by class.

    ``adds`` counts binary additions implied by n-ary sums (n-1 each),
    likewise ``muls``; ``pows`` counts general powers, ``calls`` elementary
    function applications, ``cmps`` relational tests, ``branches``
    conditional selections.
    """

    adds: int = 0
    muls: int = 0
    pows: int = 0
    divs: int = 0
    calls: int = 0
    cmps: int = 0
    branches: int = 0

    @property
    def total(self) -> int:
        return (
            self.adds
            + self.muls
            + self.pows
            + self.divs
            + self.calls
            + self.cmps
            + self.branches
        )

    def __add__(self, other: "OpHistogram") -> "OpHistogram":
        return OpHistogram(
            self.adds + other.adds,
            self.muls + other.muls,
            self.pows + other.pows,
            self.divs + other.divs,
            self.calls + other.calls,
            self.cmps + other.cmps,
            self.branches + other.branches,
        )

    def __mul__(self, factor: int) -> "OpHistogram":
        return OpHistogram(
            self.adds * factor,
            self.muls * factor,
            self.pows * factor,
            self.divs * factor,
            self.calls * factor,
            self.cmps * factor,
            self.branches * factor,
        )

    __rmul__ = __mul__


def op_histogram(expr: Expr) -> OpHistogram:
    """Operation histogram of ``expr`` (treating the tree as a tree: shared
    subtrees, if any survive outside CSE, are counted each time).  A
    symbolic :class:`Reduce` counts its body once per member plus the
    accumulating additions, matching what the generated loop executes."""
    cache: dict[Expr, OpHistogram] = {}

    def walk(node: Expr) -> OpHistogram:
        hit = cache.get(node)
        if hit is not None:
            return hit
        if isinstance(node, Reduce):
            h = walk(node.body) * node.count + OpHistogram(
                adds=node.count - 1
            )
        else:
            h = OpHistogram()
            for a in node.args:
                h = h + walk(a)
            if isinstance(node, Add):
                h = h + OpHistogram(adds=len(node.args) - 1)
            elif isinstance(node, Mul):
                h = h + OpHistogram(muls=len(node.args) - 1)
            elif isinstance(node, Pow):
                if (
                    isinstance(node.exponent, Const)
                    and node.exponent.value == -1
                ):
                    h = h + OpHistogram(divs=1)
                else:
                    h = h + OpHistogram(pows=1)
            elif isinstance(node, Call):
                h = h + OpHistogram(calls=1)
            elif isinstance(node, Rel):
                h = h + OpHistogram(cmps=1)
            elif isinstance(node, BoolOp):
                h = h + OpHistogram(cmps=max(len(node.args) - 1, 1))
            elif isinstance(node, ITE):
                h = h + OpHistogram(branches=1)
        cache[node] = h
        return h

    return walk(expr)


def op_count(expr: Expr) -> int:
    """Total scalar operation count of ``expr``."""
    return op_histogram(expr).total


def depth(expr: Expr) -> int:
    """Height of the expression tree (a leaf has depth 1)."""
    if not expr.args:
        return 1
    return 1 + max(depth(a) for a in expr.args)
