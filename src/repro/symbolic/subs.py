"""Substitution and numeric evaluation of expressions.

Evaluation here is the *reference* semantics: the code generator's output is
tested against :func:`evaluate` on randomised inputs, which is what lets the
property-based tests assert that simplification, CSE and code generation are
all meaning-preserving.
"""

from __future__ import annotations

import math
from typing import Mapping

from .builders import FUNCTIONS
from .expr import (
    Add,
    BoolOp,
    Call,
    Const,
    Der,
    Expr,
    ExprLike,
    ITE,
    Mul,
    Pow,
    Rel,
    Sym,
    as_expr,
)

__all__ = ["substitute", "evaluate", "EvalError"]


class EvalError(ValueError):
    """Raised when numeric evaluation encounters an unbound symbol or a
    domain error that cannot be represented as a float."""


def substitute(expr: Expr, mapping: Mapping[Expr, ExprLike]) -> Expr:
    """Replace occurrences of keys of ``mapping`` in ``expr`` (bottom-up).

    Keys may be any expression (most commonly :class:`Sym`); replacement is
    applied once (no fixpoint iteration), matching Mathematica's ``ReplaceAll``
    which is what the original system used for model transformations.
    """
    table: dict[Expr, Expr] = {as_expr(k): as_expr(v) for k, v in mapping.items()}
    cache: dict[Expr, Expr] = {}

    def walk(node: Expr) -> Expr:
        hit = table.get(node)
        if hit is not None:
            return hit
        cached = cache.get(node)
        if cached is not None:
            return cached
        if not node.args:
            cache[node] = node
            return node
        new_args = tuple(walk(a) for a in node.args)
        result = node if all(n is o for n, o in zip(new_args, node.args)) else node.with_args(new_args)
        cache[node] = result
        return result

    return walk(expr)


_REL_FUNCS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def evaluate(expr: Expr, env: Mapping[str, float]) -> float:
    """Numerically evaluate ``expr`` with symbol values taken from ``env``.

    Relational and boolean nodes evaluate to 1.0 / 0.0.  ``Der`` nodes cannot
    be evaluated (they are eliminated by the expression transformer before
    any numeric work happens) and raise :class:`EvalError`.
    """
    cache: dict[Expr, float] = {}

    def walk(node: Expr) -> float:
        cached = cache.get(node)
        if cached is not None:
            return cached
        result = _eval_node(node, env, walk)
        cache[node] = result
        return result

    return walk(expr)


def _eval_node(node: Expr, env: Mapping[str, float], walk) -> float:
    if isinstance(node, Const):
        return float(node.value)
    if isinstance(node, Sym):
        try:
            return float(env[node.name])
        except KeyError:
            raise EvalError(f"unbound symbol {node.name!r}") from None
    if isinstance(node, Add):
        return math.fsum(walk(a) for a in node.args)
    if isinstance(node, Mul):
        out = 1.0
        for a in node.args:
            out *= walk(a)
        return out
    if isinstance(node, Pow):
        base = walk(node.base)
        exponent = walk(node.exponent)
        try:
            value = base**exponent
        except (OverflowError, ZeroDivisionError, ValueError) as exc:
            raise EvalError(f"power domain error: {base}**{exponent}") from exc
        if isinstance(value, complex):
            raise EvalError(f"complex result: {base}**{exponent}")
        return float(value)
    if isinstance(node, Call):
        spec = FUNCTIONS.get(node.fn)
        if spec is None:
            raise EvalError(f"unknown function {node.fn!r}")
        values = [walk(a) for a in node.args]
        try:
            return float(spec.impl(*values))
        except (ValueError, OverflowError, ZeroDivisionError) as exc:
            raise EvalError(f"domain error in {node.fn}({values})") from exc
    if isinstance(node, Rel):
        return 1.0 if _REL_FUNCS[node.op](walk(node.lhs), walk(node.rhs)) else 0.0
    if isinstance(node, BoolOp):
        if node.op == "not":
            return 0.0 if walk(node.args[0]) else 1.0
        if node.op == "and":
            return 1.0 if all(walk(a) for a in node.args) else 0.0
        return 1.0 if any(walk(a) for a in node.args) else 0.0
    if isinstance(node, ITE):
        return walk(node.then) if walk(node.cond) else walk(node.orelse)
    if isinstance(node, Der):
        raise EvalError("cannot numerically evaluate a derivative node")
    raise EvalError(f"cannot evaluate node type {type(node).__name__}")
