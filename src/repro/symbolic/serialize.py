"""JSON serialisation of expressions and ODE systems.

The original system shipped expressions between the compiler and the
Mathematica kernel over MathLink (section 3.1); this module provides the
reproduction's equivalent interchange format, so compiled systems can be
saved, diffed, and reloaded without re-running the front half of the
pipeline.
"""

from __future__ import annotations

import json
from typing import Any

from .expr import (
    Add,
    BoolOp,
    Call,
    Const,
    Der,
    Expr,
    ITE,
    Mul,
    Pow,
    Reduce,
    Rel,
    Sym,
    add,
    mul,
    pow_,
)

__all__ = [
    "expr_to_obj",
    "expr_from_obj",
    "dumps_expr",
    "loads_expr",
    "system_to_obj",
    "system_from_obj",
]


def expr_to_obj(expr: Expr) -> Any:
    """Convert an expression into JSON-compatible nested structures."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return {"sym": expr.name}
    if isinstance(expr, Add):
        return {"add": [expr_to_obj(a) for a in expr.args]}
    if isinstance(expr, Mul):
        return {"mul": [expr_to_obj(a) for a in expr.args]}
    if isinstance(expr, Pow):
        return {"pow": [expr_to_obj(expr.base), expr_to_obj(expr.exponent)]}
    if isinstance(expr, Call):
        return {"call": expr.fn, "args": [expr_to_obj(a) for a in expr.args]}
    if isinstance(expr, Der):
        return {"der": expr_to_obj(expr.expr)}
    if isinstance(expr, Rel):
        return {
            "rel": expr.op,
            "args": [expr_to_obj(expr.lhs), expr_to_obj(expr.rhs)],
        }
    if isinstance(expr, BoolOp):
        return {"bool": expr.op, "args": [expr_to_obj(a) for a in expr.args]}
    if isinstance(expr, ITE):
        return {
            "ite": [
                expr_to_obj(expr.cond),
                expr_to_obj(expr.then),
                expr_to_obj(expr.orelse),
            ]
        }
    if isinstance(expr, Reduce):
        return {
            "reduce": expr_to_obj(expr.body),
            "family": expr.family,
            "start": expr.start,
            "count": expr.count,
        }
    raise TypeError(f"cannot serialise node type {type(expr).__name__}")


def expr_from_obj(obj: Any) -> Expr:
    """Inverse of :func:`expr_to_obj` (re-canonicalising on the way in)."""
    if isinstance(obj, bool):
        raise ValueError("booleans are not expression literals")
    if isinstance(obj, (int, float)):
        return Const(obj)
    if not isinstance(obj, dict):
        raise ValueError(f"malformed expression object: {obj!r}")
    if "sym" in obj:
        return Sym(obj["sym"])
    if "add" in obj:
        return add(*(expr_from_obj(a) for a in obj["add"]))
    if "mul" in obj:
        return mul(*(expr_from_obj(a) for a in obj["mul"]))
    if "pow" in obj:
        base, exponent = obj["pow"]
        return pow_(expr_from_obj(base), expr_from_obj(exponent))
    if "call" in obj:
        return Call(obj["call"], [expr_from_obj(a) for a in obj["args"]])
    if "der" in obj:
        return Der(expr_from_obj(obj["der"]))
    if "rel" in obj:
        lhs, rhs = obj["args"]
        return Rel(obj["rel"], expr_from_obj(lhs), expr_from_obj(rhs))
    if "bool" in obj:
        return BoolOp(obj["bool"], [expr_from_obj(a) for a in obj["args"]])
    if "ite" in obj:
        cond, then, orelse = obj["ite"]
        return ITE(
            expr_from_obj(cond), expr_from_obj(then), expr_from_obj(orelse)
        )
    if "reduce" in obj:
        return Reduce(
            expr_from_obj(obj["reduce"]),
            obj["family"],
            obj["start"],
            obj["count"],
        )
    raise ValueError(f"malformed expression object: {obj!r}")


def dumps_expr(expr: Expr) -> str:
    return json.dumps(expr_to_obj(expr))


def loads_expr(text: str) -> Expr:
    return expr_from_obj(json.loads(text))


def system_to_obj(system) -> dict:
    """Serialise an :class:`~repro.codegen.transform.OdeSystem`."""
    return {
        "name": system.name,
        "free_var": system.free_var,
        "state_names": list(system.state_names),
        "param_names": list(system.param_names),
        "rhs": [expr_to_obj(r) for r in system.rhs],
        "start_values": list(system.start_values),
        "param_values": list(system.param_values),
    }


def system_from_obj(obj: dict):
    """Inverse of :func:`system_to_obj`."""
    from ..codegen.transform import OdeSystem

    return OdeSystem(
        name=obj["name"],
        free_var=obj["free_var"],
        state_names=tuple(obj["state_names"]),
        param_names=tuple(obj["param_names"]),
        rhs=tuple(expr_from_obj(r) for r in obj["rhs"]),
        start_values=tuple(float(v) for v in obj["start_values"]),
        param_values=tuple(float(v) for v in obj["param_values"]),
    )
