"""Core symbolic expression AST.

This module implements the immutable expression tree used throughout the
reproduction: the modeling layer builds equations out of these nodes, the
analysis layer walks them to find variable dependencies, and the code
generator turns them into numerical programs.

The design mirrors what the ObjectMath system obtained from the Mathematica
kernel (the paper communicates with Mathematica over MathLink and represents
expressions in ``FullForm``): a small, canonicalised term algebra with

* ``Const`` — numeric literals (int or float),
* ``Sym``   — named symbols (state variables, parameters, the free variable),
* ``Add`` / ``Mul`` — n-ary commutative-associative operators with constant
  folding and like-term collection performed eagerly in the constructors,
* ``Pow``   — binary power with the usual short-circuit identities,
* ``Call``  — applications of named elementary functions (``sin`` …),
* ``Der``   — the first-order time derivative of an expression (the paper
  only ever needs ``Derivative[1][x][t]``),
* ``Rel`` / ``ITE`` / ``BoolOp`` — relational tests and conditional
  expressions; the paper's bearing right-hand sides contain conditionals
  (contact / no-contact), which is what motivates the semi-dynamic LPT
  scheduler of section 3.2.3.

All nodes are immutable, hashable and structurally comparable, which is what
makes hash-based common subexpression elimination (``repro.symbolic.cse``)
both simple and fast.

Nodes are additionally *hash-consed*: every constructor first consults a
module-level intern table, so structurally equal expressions built anywhere
in a process are the same object.  Equality then short-circuits to an
identity check, dictionary operations in CSE/diff/simplify hit cached
hashes, and :func:`free_symbols` can memoise its result per node — together
these dominate compile time on bearing-scale models.  The table only
affects sharing, never semantics; :func:`intern_cache_clear` drops it.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, Union

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "Add",
    "Mul",
    "Pow",
    "Call",
    "Der",
    "Rel",
    "BoolOp",
    "ITE",
    "Reduce",
    "ExprLike",
    "as_expr",
    "add",
    "mul",
    "pow_",
    "sub",
    "div",
    "neg",
    "free_symbols",
    "preorder",
    "postorder",
    "count_nodes",
    "intern_cache_clear",
    "intern_cache_size",
    "ZERO",
    "ONE",
    "MINUS_ONE",
    "TWO",
    "HALF",
]

Number = Union[int, float]
ExprLike = Union["Expr", int, float]


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


#: Hash-cons table: construction key -> the canonical node instance.
_INTERN: dict = {}

_EMPTY_SYMS: frozenset = frozenset()


def intern_cache_size() -> int:
    """Number of interned expression nodes currently alive."""
    return len(_INTERN)


def intern_cache_clear() -> None:
    """Drop the intern table.

    Only sharing is affected: nodes built afterwards no longer unify with
    nodes built before, but structural ``==``/``hash`` semantics are
    unchanged.  Useful to bound memory in very long-running processes.
    """
    _INTERN.clear()


def _fresh(cls) -> "Expr":
    """Allocate an uninitialised node with empty caches (intern-table miss)."""
    obj = object.__new__(cls)
    obj._hash = None
    obj._skey = None
    obj._free = None
    return obj


class Expr:
    """Base class for every scalar symbolic expression node.

    Instances are immutable; arithmetic operators build new canonicalised
    nodes.  Subclasses define ``args`` (child expressions), a stable
    ``_key()`` used for deterministic ordering inside ``Add``/``Mul``, and
    structural ``__eq__``/``__hash__``.

    Construction happens in each subclass's ``__new__`` (which consults the
    intern table); ``__init__`` is a deliberate no-op so that a cache hit
    does not wipe the cached ``_hash``/``_skey``/``_free`` of the returned
    canonical instance.
    """

    __slots__ = ("_hash", "_skey", "_free")

    #: class-level rank used for cross-type deterministic ordering
    _rank = 0

    # -- construction helpers ------------------------------------------------

    def __init__(self, *args, **kwargs) -> None:
        pass

    @property
    def args(self) -> tuple["Expr", ...]:
        """Child expressions (empty for leaves)."""
        return ()

    def with_args(self, args: Sequence["Expr"]) -> "Expr":
        """Rebuild this node with new children (canonicalising)."""
        raise NotImplementedError

    # -- ordering ------------------------------------------------------------

    def _key(self) -> tuple:
        """A stable, totally ordered key for deterministic argument sorting."""
        if self._skey is None:
            self._skey = self._compute_key()
        return self._skey

    def _compute_key(self) -> tuple:
        raise NotImplementedError

    # -- hashing and equality --------------------------------------------------

    def _hashable(self) -> tuple:
        raise NotImplementedError

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((type(self).__name__, self._hashable()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, Expr) else False
        if (
            self._hash is not None
            and other._hash is not None  # type: ignore[union-attr]
            and self._hash != other._hash  # type: ignore[union-attr]
        ):
            return False
        return self._hashable() == other._hashable()  # type: ignore[union-attr]

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- python operator overloading -------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return add(self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return add(as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return sub(self, as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return sub(as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return mul(self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return mul(as_expr(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return div(self, as_expr(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return div(as_expr(other), self)

    def __pow__(self, other: ExprLike) -> "Expr":
        return pow_(self, as_expr(other))

    def __rpow__(self, other: ExprLike) -> "Expr":
        return pow_(as_expr(other), self)

    def __neg__(self) -> "Expr":
        return neg(self)

    def __pos__(self) -> "Expr":
        return self

    # Relational builders (return Rel nodes, not bool).
    def lt(self, other: ExprLike) -> "Rel":
        return Rel("<", self, as_expr(other))

    def le(self, other: ExprLike) -> "Rel":
        return Rel("<=", self, as_expr(other))

    def gt(self, other: ExprLike) -> "Rel":
        return Rel(">", self, as_expr(other))

    def ge(self, other: ExprLike) -> "Rel":
        return Rel(">=", self, as_expr(other))

    # -- convenience -----------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return isinstance(self, Const) and self.value == 0

    @property
    def is_one(self) -> bool:
        return isinstance(self, Const) and self.value == 1

    @property
    def is_number(self) -> bool:
        return isinstance(self, Const)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import srepr

        return srepr(self)

    def __str__(self) -> str:
        from .printer import infix

        return infix(self)


class Const(Expr):
    """A numeric literal.

    Integers are kept exact so that e.g. ``x**2`` keeps an integer exponent
    the cost model and printers can recognise; everything else is a float.
    """

    __slots__ = ("value",)
    _rank = 1

    def __new__(cls, value: Number) -> "Const":
        if isinstance(value, bool) or not _is_number(value):
            raise TypeError(f"Const expects int or float, got {value!r}")
        if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
            # canonicalise 2.0 -> 2 so structurally equal expressions unify
            value = int(value)
        key = (cls, value)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.value = value
        _INTERN[key] = obj
        return obj

    def _hashable(self) -> tuple:
        return (self.value,)

    def _compute_key(self) -> tuple:
        return (self._rank, float(self.value), "")

    def with_args(self, args: Sequence[Expr]) -> "Expr":
        if args:
            raise ValueError("Const takes no children")
        return self


class Sym(Expr):
    """A named symbol: a state variable, parameter, or the free variable."""

    __slots__ = ("name",)
    _rank = 2

    def __new__(cls, name: str) -> "Sym":
        if not name:
            raise ValueError("symbol name must be non-empty")
        key = (cls, name)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.name = name
        _INTERN[key] = obj
        return obj

    def _hashable(self) -> tuple:
        return (self.name,)

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, self.name)

    def with_args(self, args: Sequence[Expr]) -> "Expr":
        if args:
            raise ValueError("Sym takes no children")
        return self


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python number (or expression) into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if _is_number(value):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to Expr")


ZERO = Const(0)
ONE = Const(1)
MINUS_ONE = Const(-1)
TWO = Const(2)
HALF = Const(0.5)


class Add(Expr):
    """N-ary sum, canonicalised.

    Invariants maintained by the constructor function :func:`add`:

    * no nested ``Add`` children (flattened),
    * at most one leading ``Const`` (folded), never zero,
    * like terms collected: ``x + 2*x`` becomes ``3*x``,
    * deterministic argument order (sorted by ``_key``),
    * never fewer than two arguments (smaller cases are simplified away).
    """

    __slots__ = ("_args",)
    _rank = 5

    def __new__(cls, args: tuple[Expr, ...], _internal: bool = False) -> "Add":
        if not _internal:
            raise RuntimeError("use add(...) to build sums")
        key = (cls, args)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj._args = args
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return self._args

    def _hashable(self) -> tuple:
        return self._args

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, tuple(a._key() for a in self._args))

    def with_args(self, args: Sequence[Expr]) -> Expr:
        return add(*args)


class Mul(Expr):
    """N-ary product, canonicalised (see :func:`mul` for invariants)."""

    __slots__ = ("_args",)
    _rank = 4

    def __new__(cls, args: tuple[Expr, ...], _internal: bool = False) -> "Mul":
        if not _internal:
            raise RuntimeError("use mul(...) to build products")
        key = (cls, args)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj._args = args
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return self._args

    def _hashable(self) -> tuple:
        return self._args

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, tuple(a._key() for a in self._args))

    def with_args(self, args: Sequence[Expr]) -> Expr:
        return mul(*args)


class Pow(Expr):
    """Binary power ``base ** exponent``."""

    __slots__ = ("base", "exponent")
    _rank = 3

    def __new__(cls, base: Expr, exponent: Expr, _internal: bool = False) -> "Pow":
        if not _internal:
            raise RuntimeError("use pow_(...) to build powers")
        key = (cls, base, exponent)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.base = base
        obj.exponent = exponent
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return (self.base, self.exponent)

    def _hashable(self) -> tuple:
        return (self.base, self.exponent)

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, (self.base._key(), self.exponent._key()))

    def with_args(self, args: Sequence[Expr]) -> Expr:
        base, exponent = args
        return pow_(base, exponent)


class Call(Expr):
    """Application of a named elementary function, e.g. ``sin(x)``.

    The set of admissible names (and their numeric implementations and
    derivative rules) lives in :mod:`repro.symbolic.builders`; keeping the
    node itself name-based keeps the AST closed and easily printable to
    Fortran / C / Python.
    """

    __slots__ = ("fn", "_args")
    _rank = 6

    def __new__(cls, fn: str, args: Sequence[Expr]) -> "Call":
        args_t = tuple(as_expr(a) for a in args)
        key = (cls, fn, args_t)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.fn = fn
        obj._args = args_t
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return self._args

    def _hashable(self) -> tuple:
        return (self.fn, self._args)

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, (self.fn, tuple(a._key() for a in self._args)))

    def with_args(self, args: Sequence[Expr]) -> Expr:
        return Call(self.fn, tuple(args))


class Der(Expr):
    """First-order derivative with respect to the free variable (time).

    The paper restricts generated code to explicit first-order ODE systems,
    so ``Der`` only ever wraps a state-variable symbol by the time code
    generation runs; the expression transformer enforces this.
    """

    __slots__ = ("expr",)
    _rank = 7

    def __new__(cls, expr: ExprLike) -> "Der":
        expr = as_expr(expr)
        key = (cls, expr)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.expr = expr
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def _hashable(self) -> tuple:
        return (self.expr,)

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, self.expr._key())

    def with_args(self, args: Sequence[Expr]) -> Expr:
        (expr,) = args
        return Der(expr)


_REL_OPS = ("<", "<=", ">", ">=", "==", "!=")


class Rel(Expr):
    """A relational test, e.g. ``delta > 0``.  Evaluates to 0.0/1.0."""

    __slots__ = ("op", "lhs", "rhs")
    _rank = 8

    def __new__(cls, op: str, lhs: ExprLike, rhs: ExprLike) -> "Rel":
        if op not in _REL_OPS:
            raise ValueError(f"unknown relational operator {op!r}")
        lhs = as_expr(lhs)
        rhs = as_expr(rhs)
        key = (cls, op, lhs, rhs)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.op = op
        obj.lhs = lhs
        obj.rhs = rhs
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def _hashable(self) -> tuple:
        return (self.op, self.lhs, self.rhs)

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, (self.op, self.lhs._key(), self.rhs._key()))

    def with_args(self, args: Sequence[Expr]) -> Expr:
        lhs, rhs = args
        return Rel(self.op, lhs, rhs)


class BoolOp(Expr):
    """Logical combination of relational tests (``and`` / ``or`` / ``not``)."""

    __slots__ = ("op", "_args")
    _rank = 9

    def __new__(cls, op: str, args: Sequence[Expr]) -> "BoolOp":
        if op not in ("and", "or", "not"):
            raise ValueError(f"unknown boolean operator {op!r}")
        if op == "not" and len(args) != 1:
            raise ValueError("'not' takes exactly one argument")
        if op in ("and", "or") and len(args) < 2:
            raise ValueError(f"{op!r} takes at least two arguments")
        args_t = tuple(as_expr(a) for a in args)
        key = (cls, op, args_t)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.op = op
        obj._args = args_t
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return self._args

    def _hashable(self) -> tuple:
        return (self.op, self._args)

    def _compute_key(self) -> tuple:
        return (self._rank, 0.0, (self.op, tuple(a._key() for a in self._args)))

    def with_args(self, args: Sequence[Expr]) -> Expr:
        return BoolOp(self.op, tuple(args))


class ITE(Expr):
    """Conditional expression ``if cond then then_ else else_``.

    These are the "conditional expressions within the right-hand sides" of
    section 3.2.3 that defeat static execution-time prediction and motivate
    the semi-dynamic LPT scheduler.
    """

    __slots__ = ("cond", "then", "orelse")
    _rank = 10

    def __new__(cls, cond: ExprLike, then: ExprLike, orelse: ExprLike) -> "ITE":
        cond = as_expr(cond)
        then = as_expr(then)
        orelse = as_expr(orelse)
        key = (cls, cond, then, orelse)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.cond = cond
        obj.then = then
        obj.orelse = orelse
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)

    def _hashable(self) -> tuple:
        return (self.cond, self.then, self.orelse)

    def _compute_key(self) -> tuple:
        return (
            self._rank,
            0.0,
            (self.cond._key(), self.then._key(), self.orelse._key()),
        )

    def with_args(self, args: Sequence[Expr]) -> Expr:
        cond, then, orelse = args
        return ITE(cond, then, orelse)


class Reduce(Expr):
    """Symbolic sum of ``body`` over the instances of an array family.

    ``body`` is written in the namespace of the family's *representative*
    instance (``f"{family}{start}"``); the reduction stands for

    ``sum(body[representative := f"{family}{i}"] for i in range(start, start + count))``

    Array-aware flattening keeps these symbolic end-to-end so the model
    stays sized by class structure: analysis maps the body's representative
    symbols onto set vertices, the cost model weights the body by ``count``,
    and the code generators lower each reduction to an accumulation loop
    (python) or a strided-slice ``sum`` (numpy).  Scalar-mode flattening —
    and :meth:`ArraySystem.expand` — lowers them with the canonical
    :func:`add`, which is insensitive to construction order, so the
    expansion is bit-identical to the scalar oracle.
    """

    __slots__ = ("body", "family", "start", "count")
    _rank = 11

    def __new__(cls, body: ExprLike, family: str, start: int, count: int) -> "Reduce":
        body = as_expr(body)
        if not family:
            raise ValueError("Reduce family base name must be non-empty")
        if not isinstance(start, int) or not isinstance(count, int):
            raise TypeError("Reduce start/count must be int")
        if count < 1:
            raise ValueError("Reduce count must be >= 1")
        key = (cls, body, family, start, count)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        obj = _fresh(cls)
        obj.body = body
        obj.family = family
        obj.start = start
        obj.count = count
        _INTERN[key] = obj
        return obj

    @property
    def args(self) -> tuple[Expr, ...]:
        return (self.body,)

    def _hashable(self) -> tuple:
        return (self.body, self.family, self.start, self.count)

    def _compute_key(self) -> tuple:
        return (
            self._rank,
            0.0,
            (self.family, self.start, self.count, self.body._key()),
        )

    def with_args(self, args: Sequence[Expr]) -> Expr:
        (body,) = args
        return Reduce(body, self.family, self.start, self.count)


# ---------------------------------------------------------------------------
# Canonicalising constructors
# ---------------------------------------------------------------------------


def _coeff_term(expr: Expr) -> tuple[Number, Expr]:
    """Split ``expr`` into (numeric coefficient, residual term)."""
    if isinstance(expr, Const):
        return expr.value, ONE
    if isinstance(expr, Mul):
        first = expr.args[0]
        if isinstance(first, Const):
            rest = expr.args[1:]
            if len(rest) == 1:
                return first.value, rest[0]
            return first.value, Mul(rest, _internal=True)
    return 1, expr


def add(*terms: ExprLike) -> Expr:
    """Build a canonical sum of ``terms``.

    Flattens nested sums, folds constants, collects like terms (terms equal
    up to a numeric coefficient), and sorts arguments deterministically.
    """
    const_part: Number = 0
    collected: dict[Expr, Number] = {}
    order: list[Expr] = []

    def absorb(item: Expr) -> None:
        nonlocal const_part
        if isinstance(item, Const):
            const_part = const_part + item.value
            return
        if isinstance(item, Add):
            for child in item.args:
                absorb(child)
            return
        coeff, term = _coeff_term(item)
        if term in collected:
            collected[term] = collected[term] + coeff
        else:
            collected[term] = coeff
            order.append(term)

    for raw in terms:
        absorb(as_expr(raw))

    parts: list[Expr] = []
    for term in sorted(order, key=lambda e: e._key()):
        coeff = collected[term]
        if coeff == 0:
            continue
        if coeff == 1:
            parts.append(term)
        else:
            parts.append(mul(Const(coeff), term))
    if const_part != 0:
        parts.insert(0, Const(const_part))

    if not parts:
        return ZERO
    if len(parts) == 1:
        return parts[0]
    return Add(tuple(parts), _internal=True)


def mul(*factors: ExprLike) -> Expr:
    """Build a canonical product of ``factors``.

    Flattens nested products, folds constants (returning 0 eagerly when any
    factor is zero), merges equal bases into powers, and sorts arguments.
    """
    const_part: Number = 1
    powers: dict[Expr, Expr] = {}
    order: list[Expr] = []

    def absorb(item: Expr) -> None:
        nonlocal const_part
        if isinstance(item, Const):
            const_part = const_part * item.value
            return
        if isinstance(item, Mul):
            for child in item.args:
                absorb(child)
            return
        if isinstance(item, Pow):
            base, exponent = item.base, item.exponent
        else:
            base, exponent = item, ONE
        if base in powers:
            powers[base] = add(powers[base], exponent)
        else:
            powers[base] = exponent
            order.append(base)

    for raw in factors:
        absorb(as_expr(raw))

    if const_part == 0:
        return ZERO

    parts: list[Expr] = []
    for base in sorted(order, key=lambda e: e._key()):
        exponent = powers[base]
        factor = pow_(base, exponent)
        if factor.is_one:
            continue
        if isinstance(factor, Const):
            const_part = const_part * factor.value
            continue
        parts.append(factor)

    if const_part == 0:
        return ZERO
    if const_part != 1:
        parts.insert(0, Const(const_part))

    if not parts:
        return ONE
    if len(parts) == 1:
        return parts[0]
    return Mul(tuple(parts), _internal=True)


def pow_(base: ExprLike, exponent: ExprLike) -> Expr:
    """Build a canonical power ``base ** exponent``."""
    base = as_expr(base)
    exponent = as_expr(exponent)

    if exponent.is_zero:
        return ONE
    if exponent.is_one:
        return base
    if base.is_one:
        return ONE
    if base.is_zero:
        if isinstance(exponent, Const) and exponent.value > 0:
            return ZERO
        # 0**negative / 0**symbolic kept symbolic (division-by-zero guard)
        return Pow(base, exponent, _internal=True)
    if isinstance(base, Const) and isinstance(exponent, Const):
        b, e = base.value, exponent.value
        if b > 0 or (isinstance(e, int)):
            try:
                value = b**e
            except (OverflowError, ZeroDivisionError):
                return Pow(base, exponent, _internal=True)
            if _is_number(value):
                if isinstance(value, int) and abs(value) > 2**63:
                    value = float(value)
                return Const(value)
        return Pow(base, exponent, _internal=True)
    if isinstance(base, Pow) and isinstance(base.exponent, Const) and isinstance(
        exponent, Const
    ):
        # (x**a)**b -> x**(a*b), but only where it is an identity over the
        # reals: when b is an integer (integer powers compose for any real
        # base), or when a is an odd integer (x**a preserves sign, so no
        # |x| is silently dropped).  Combining (x**2)**0.5 into x would be
        # wrong for negative x.
        a_val, b_val = base.exponent.value, exponent.value
        if isinstance(b_val, int) or (
            isinstance(a_val, int) and a_val % 2 == 1
        ):
            return pow_(base.base, mul(base.exponent, exponent))
    return Pow(base, exponent, _internal=True)


def sub(a: ExprLike, b: ExprLike) -> Expr:
    return add(as_expr(a), mul(MINUS_ONE, as_expr(b)))


def div(a: ExprLike, b: ExprLike) -> Expr:
    b = as_expr(b)
    if isinstance(b, Const):
        if b.value == 0:
            raise ZeroDivisionError("symbolic division by constant zero")
        return mul(as_expr(a), Const(1.0 / b.value if b.value != 1 else 1))
    return mul(as_expr(a), pow_(b, MINUS_ONE))


def neg(a: ExprLike) -> Expr:
    return mul(MINUS_ONE, as_expr(a))


# ---------------------------------------------------------------------------
# Traversal utilities
# ---------------------------------------------------------------------------


def preorder(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all descendants, parents before children."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.args))


def postorder(expr: Expr) -> Iterator[Expr]:
    """Yield all descendants of ``expr``, children before parents."""
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
        else:
            stack.append((node, True))
            for child in reversed(node.args):
                stack.append((child, False))


def free_symbols(expr: Expr) -> frozenset[Sym]:
    """The set of :class:`Sym` leaves appearing anywhere in ``expr``.

    Memoised per node: with hash-consed nodes, shared subtrees are computed
    once per process, which turns the repeated ``free_symbols`` calls in
    CSE, task partitioning and code emission from O(tree) into O(1).
    """
    cached = expr._free
    if cached is not None:
        return cached
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if node._free is not None:
            continue
        if expanded:
            if isinstance(node, Sym):
                node._free = frozenset((node,))
            elif not node.args:
                node._free = _EMPTY_SYMS
            else:
                child_sets = [c._free for c in node.args]
                if len(child_sets) == 1:
                    node._free = child_sets[0]
                else:
                    node._free = frozenset().union(*child_sets)
        else:
            stack.append((node, True))
            for child in node.args:
                if child._free is None:
                    stack.append((child, False))
    return expr._free


def count_nodes(expr: Expr) -> int:
    """Total number of AST nodes in ``expr`` (shared subtrees counted anew)."""
    return sum(1 for _ in preorder(expr))
