"""Symbolic expression engine.

This subpackage is the stand-in for the Mathematica kernel that the original
ObjectMath environment drove over MathLink: a small canonicalising term
algebra with differentiation, substitution, simplification, expansion,
common subexpression elimination, and multi-dialect printing.
"""

from .expr import (
    Add,
    BoolOp,
    Call,
    Const,
    Der,
    Expr,
    ExprLike,
    ITE,
    Mul,
    Pow,
    Reduce,
    Rel,
    Sym,
    add,
    as_expr,
    count_nodes,
    div,
    free_symbols,
    intern_cache_clear,
    intern_cache_size,
    mul,
    neg,
    postorder,
    pow_,
    preorder,
    sub,
)
from .builders import (
    abs_,
    acos,
    asin,
    atan,
    atan2,
    cos,
    cosh,
    exp,
    if_then_else,
    log,
    max_,
    min_,
    sign,
    sin,
    sinh,
    sqrt,
    symbols,
    tan,
    tanh,
)
from .cse import CseResult, cse, cse_grouped
from .diff import DiffError, diff
from .nodecount import OpHistogram, depth, op_count, op_histogram
from .printer import code, fullform, infix, srepr, tree
from .simplify import expand, simplify
from .subs import EvalError, evaluate, substitute
from .vector import Vec, as_vec, cross, dot, norm, vec2, vec3, zeros

__all__ = [
    # expr
    "Add", "BoolOp", "Call", "Const", "Der", "Expr", "ExprLike", "ITE",
    "Mul", "Pow", "Reduce", "Rel", "Sym", "add", "as_expr", "count_nodes",
    "div",
    "free_symbols", "intern_cache_clear", "intern_cache_size",
    "mul", "neg", "postorder", "pow_", "preorder", "sub",
    # builders
    "abs_", "acos", "asin", "atan", "atan2", "cos", "cosh", "exp",
    "if_then_else", "log", "max_", "min_", "sign", "sin", "sinh", "sqrt",
    "symbols", "tan", "tanh",
    # passes
    "CseResult", "cse", "cse_grouped", "DiffError", "diff",
    "OpHistogram", "depth", "op_count", "op_histogram",
    "code", "fullform", "infix", "srepr", "tree",
    "expand", "simplify", "EvalError", "evaluate", "substitute",
    # vectors
    "Vec", "as_vec", "cross", "dot", "norm", "vec2", "vec3", "zeros",
]
