"""Expression printers.

Four output forms are provided, mirroring the artifacts shown in the paper:

* :func:`infix` — human-readable (and Python-parsable) infix form, the
  "normal form" of Figure 11,
* :func:`fullform` — Mathematica-``FullForm``-style prefix form; with
  ``annotate=True`` it wraps typed leaves in ``om$Type[name, om$Real]`` the
  way the ObjectMath 4.0 intermediate representation does (Figure 11),
* :func:`srepr` — unambiguous constructor-style repr used in error messages
  and debugging,
* :func:`code` — expression-level code generation for the ``python``,
  ``fortran`` and ``c`` dialects, shared by the code-generator back ends.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .builders import FUNCTIONS
from .expr import (
    Add,
    BoolOp,
    Call,
    Const,
    Der,
    Expr,
    ITE,
    Mul,
    Pow,
    Reduce,
    Rel,
    Sym,
)

__all__ = ["infix", "fullform", "srepr", "code", "tree"]

# Precedence levels for infix printing (higher binds tighter).
_PREC_ADD = 10
_PREC_MUL = 20
_PREC_UNARY = 25
_PREC_POW = 30
_PREC_ATOM = 100


def _const_str(value: float | int) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(value)


def infix(expr: Expr) -> str:
    """Render ``expr`` in infix notation (also valid Python)."""
    text, _ = _infix(expr)
    return text


def _paren(text: str, prec: int, parent_prec: int) -> str:
    return f"({text})" if prec < parent_prec else text


def _infix(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, int) and value < 0 or isinstance(value, float) and value < 0:
            return _const_str(value), _PREC_UNARY
        return _const_str(value), _PREC_ATOM
    if isinstance(expr, Sym):
        return expr.name, _PREC_ATOM
    if isinstance(expr, Add):
        parts: list[str] = []
        for i, arg in enumerate(expr.args):
            text, prec = _infix(arg)
            if i == 0:
                parts.append(_paren(text, prec, _PREC_ADD))
            elif text.startswith("-"):
                parts.append(f" - {_paren(text[1:], prec, _PREC_ADD)}")
            else:
                parts.append(f" + {_paren(text, prec, _PREC_ADD + 1)}")
        return "".join(parts), _PREC_ADD
    if isinstance(expr, Mul):
        args = expr.args
        prefix = ""
        if isinstance(args[0], Const) and args[0].value == -1 and len(args) > 1:
            prefix = "-"
            args = args[1:]
        texts = []
        for arg in args:
            text, prec = _infix(arg)
            texts.append(_paren(text, prec, _PREC_MUL + 1))
        body = "*".join(texts)
        if prefix:
            return prefix + body, _PREC_UNARY
        return body, _PREC_MUL
    if isinstance(expr, Pow):
        base_text, base_prec = _infix(expr.base)
        exp_text, exp_prec = _infix(expr.exponent)
        base_text = _paren(base_text, base_prec, _PREC_POW + 1)
        exp_text = _paren(exp_text, exp_prec, _PREC_POW)
        return f"{base_text}**{exp_text}", _PREC_POW
    if isinstance(expr, Call):
        inner = ", ".join(infix(a) for a in expr.args)
        return f"{expr.fn}({inner})", _PREC_ATOM
    if isinstance(expr, Der):
        inner, _ = _infix(expr.expr)
        return f"der({inner})", _PREC_ATOM
    if isinstance(expr, Rel):
        lhs, _ = _infix(expr.lhs)
        rhs, _ = _infix(expr.rhs)
        return f"({lhs} {expr.op} {rhs})", _PREC_ATOM
    if isinstance(expr, BoolOp):
        if expr.op == "not":
            inner, _ = _infix(expr.args[0])
            return f"(not {inner})", _PREC_ATOM
        joiner = f" {expr.op} "
        return "(" + joiner.join(infix(a) for a in expr.args) + ")", _PREC_ATOM
    if isinstance(expr, ITE):
        cond, _ = _infix(expr.cond)
        then, _ = _infix(expr.then)
        orelse, _ = _infix(expr.orelse)
        return f"({then} if {cond} else {orelse})", _PREC_ATOM
    if isinstance(expr, Reduce):
        body, _ = _infix(expr.body)
        rng = f"{expr.family}[{expr.start}..{expr.start + expr.count - 1}]"
        return f"reduce_sum[{rng}]({body})", _PREC_ATOM
    raise TypeError(f"cannot print node type {type(expr).__name__}")


# ---------------------------------------------------------------------------
# FullForm / prefix printing (ObjectMath intermediate representation)
# ---------------------------------------------------------------------------

_FULLFORM_FN = {
    "sin": "Sin",
    "cos": "Cos",
    "tan": "Tan",
    "exp": "Exp",
    "log": "Log",
    "sqrt": "Sqrt",
    "abs": "Abs",
    "sign": "Sign",
    "min": "Min",
    "max": "Max",
    "atan2": "ArcTan2",
    "asin": "ArcSin",
    "acos": "ArcCos",
    "atan": "ArcTan",
    "sinh": "Sinh",
    "cosh": "Cosh",
    "tanh": "Tanh",
}

_REL_FULLFORM = {
    "<": "Less",
    "<=": "LessEqual",
    ">": "Greater",
    ">=": "GreaterEqual",
    "==": "Equal",
    "!=": "Unequal",
}


def fullform(
    expr: Expr,
    annotate: bool = False,
    types: Mapping[str, str] | None = None,
    free_var: str = "t",
) -> str:
    """Render ``expr`` in Mathematica-FullForm-style prefix notation.

    With ``annotate=True``, symbols are wrapped as ``om$Type[name, om$Real]``
    (the type defaulting to ``om$Real``, overridable per symbol through
    ``types``), reproducing the type-annotated intermediate form of
    Figure 11.  Derivatives print as ``Derivative[1][x][t]``.
    """
    types = types or {}

    def ann(name: str) -> str:
        if not annotate:
            return name
        ty = types.get(name, "om$Real")
        return f"om$Type[{name}, {ty}]"

    def walk(node: Expr) -> str:
        if isinstance(node, Const):
            return _const_str(node.value)
        if isinstance(node, Sym):
            return ann(node.name)
        if isinstance(node, Add):
            return "Plus[" + ", ".join(walk(a) for a in node.args) + "]"
        if isinstance(node, Mul):
            args = node.args
            if isinstance(args[0], Const) and args[0].value == -1 and len(args) == 2:
                return f"Minus[{walk(args[1])}]"
            return "Times[" + ", ".join(walk(a) for a in args) + "]"
        if isinstance(node, Pow):
            return f"Power[{walk(node.base)}, {walk(node.exponent)}]"
        if isinstance(node, Call):
            head = _FULLFORM_FN.get(node.fn, node.fn.capitalize())
            return head + "[" + ", ".join(walk(a) for a in node.args) + "]"
        if isinstance(node, Der):
            if isinstance(node.expr, Sym):
                return f"Derivative[1][{ann(node.expr.name)}][{ann(free_var)}]"
            return f"Derivative[1][{walk(node.expr)}][{ann(free_var)}]"
        if isinstance(node, Rel):
            head = _REL_FULLFORM[node.op]
            return f"{head}[{walk(node.lhs)}, {walk(node.rhs)}]"
        if isinstance(node, BoolOp):
            head = {"and": "And", "or": "Or", "not": "Not"}[node.op]
            return head + "[" + ", ".join(walk(a) for a in node.args) + "]"
        if isinstance(node, ITE):
            return f"If[{walk(node.cond)}, {walk(node.then)}, {walk(node.orelse)}]"
        if isinstance(node, Reduce):
            rng = f"{node.family}, {node.start}, {node.count}"
            return f"ReduceSum[{walk(node.body)}, {rng}]"
        raise TypeError(f"cannot print node type {type(node).__name__}")

    return walk(expr)


def srepr(expr: Expr) -> str:
    """Constructor-style representation.

    Round-trippable via ``eval`` given the canonicalising builders
    (``add``, ``mul``, ``pow_``) and node classes in scope.
    """
    if isinstance(expr, Const):
        return f"Const({expr.value!r})"
    if isinstance(expr, Sym):
        return f"Sym({expr.name!r})"
    if isinstance(expr, Add):
        return "add(" + ", ".join(srepr(a) for a in expr.args) + ")"
    if isinstance(expr, Mul):
        return "mul(" + ", ".join(srepr(a) for a in expr.args) + ")"
    if isinstance(expr, Pow):
        return f"pow_({srepr(expr.base)}, {srepr(expr.exponent)})"
    if isinstance(expr, Call):
        return f"Call({expr.fn!r}, [{', '.join(srepr(a) for a in expr.args)}])"
    if isinstance(expr, Der):
        return f"Der({srepr(expr.expr)})"
    if isinstance(expr, Rel):
        return f"Rel({expr.op!r}, {srepr(expr.lhs)}, {srepr(expr.rhs)})"
    if isinstance(expr, BoolOp):
        return f"BoolOp({expr.op!r}, [{', '.join(srepr(a) for a in expr.args)}])"
    if isinstance(expr, ITE):
        return f"ITE({srepr(expr.cond)}, {srepr(expr.then)}, {srepr(expr.orelse)})"
    if isinstance(expr, Reduce):
        return (
            f"Reduce({srepr(expr.body)}, {expr.family!r}, "
            f"{expr.start}, {expr.count})"
        )
    return f"<{type(expr).__name__}>"


# ---------------------------------------------------------------------------
# Code printing (shared by the Python / Fortran 90 / C back ends)
# ---------------------------------------------------------------------------


def code(
    expr: Expr,
    dialect: str = "python",
    rename: Callable[[str], str] | None = None,
) -> str:
    """Render ``expr`` as an expression in the target ``dialect``.

    ``rename`` maps symbol names to target-language identifiers (the code
    generator uses it to map flattened model names such as ``W[3].F.x`` to
    legal identifiers or array references).

    The ``fortran`` dialect emits ``**`` powers and merges conditionals with
    ``merge(then, else, cond)`` (F90's elemental conditional).  The ``c``
    dialect emits ``pow`` and ternaries.  ``python`` output is directly
    ``eval``-able given a suitable namespace.  The ``numpy`` dialect is the
    elementwise/batched variant of ``python``: elementary functions use
    their ufunc names (``arcsin``, ``minimum``, …), conditionals lower to
    ``where(cond, then, else)``, and boolean operators lower to the
    bitwise ``&``/``|``/``~`` that NumPy overloads for boolean arrays.
    """
    if dialect not in ("python", "numpy", "fortran", "c"):
        raise ValueError(f"unknown dialect {dialect!r}")
    rename = rename or (lambda name: name)

    def const(value: float | int) -> str:
        if dialect == "fortran":
            if isinstance(value, int):
                return f"{value}.0_dp" if value >= 0 else f"({value}.0_dp)"
            return f"{value!r}_dp"
        if dialect == "c":
            text = _const_str(value) if isinstance(value, float) else f"{value}.0"
            return text if value >= 0 else f"({text})"
        return _const_str(value)

    def walk(node: Expr, parent_prec: int) -> str:
        if isinstance(node, Const):
            text = const(node.value)
            return text
        if isinstance(node, Sym):
            return rename(node.name)
        if isinstance(node, Add):
            parts = []
            for i, arg in enumerate(node.args):
                text = walk(arg, _PREC_ADD if i == 0 else _PREC_ADD + 1)
                if i > 0 and text.startswith("-"):
                    parts.append(f" - {text[1:]}")
                elif i > 0:
                    parts.append(f" + {text}")
                else:
                    parts.append(text)
            body = "".join(parts)
            return f"({body})" if parent_prec > _PREC_ADD else body
        if isinstance(node, Mul):
            args = node.args
            prefix = ""
            if isinstance(args[0], Const) and args[0].value == -1 and len(args) > 1:
                prefix = "-"
                args = args[1:]
            body = "*".join(walk(a, _PREC_MUL + 1) for a in args)
            text = prefix + body
            effective = _PREC_UNARY if prefix else _PREC_MUL
            return f"({text})" if parent_prec > effective else text
        if isinstance(node, Pow):
            if dialect == "c":
                return f"pow({walk(node.base, 0)}, {walk(node.exponent, 0)})"
            base = walk(node.base, _PREC_POW + 1)
            exponent = walk(node.exponent, _PREC_POW)
            text = f"{base}**{exponent}"
            return f"({text})" if parent_prec > _PREC_POW else text
        if isinstance(node, Call):
            spec = FUNCTIONS.get(node.fn)
            name = node.fn
            if spec is not None:
                if dialect == "fortran" and spec.fortran_name:
                    name = spec.fortran_name
                elif dialect == "c" and spec.c_name:
                    name = spec.c_name
                elif dialect == "numpy" and spec.numpy_name:
                    name = spec.numpy_name
            inner = ", ".join(walk(a, 0) for a in node.args)
            return f"{name}({inner})"
        if isinstance(node, Rel):
            lhs = walk(node.lhs, _PREC_ADD)
            rhs = walk(node.rhs, _PREC_ADD)
            if dialect == "fortran":
                op = {"==": "==", "!=": "/=",}.get(node.op, node.op)
                return f"({lhs} {op} {rhs})"
            return f"({lhs} {node.op} {rhs})"
        if isinstance(node, BoolOp):
            if dialect == "python":
                ops = {"and": " and ", "or": " or "}
            elif dialect == "numpy":
                ops = {"and": " & ", "or": " | "}
            elif dialect == "fortran":
                ops = {"and": " .and. ", "or": " .or. "}
            else:
                ops = {"and": " && ", "or": " || "}
            if node.op == "not":
                inner = walk(node.args[0], 0)
                negation = {
                    "python": "not ", "numpy": "~", "fortran": ".not. ",
                    "c": "!",
                }[dialect]
                return f"({negation}{inner})"
            return "(" + ops[node.op].join(walk(a, 0) for a in node.args) + ")"
        if isinstance(node, ITE):
            cond = walk(node.cond, 0)
            then = walk(node.then, 0)
            orelse = walk(node.orelse, 0)
            if dialect == "python":
                return f"({then} if {cond} else {orelse})"
            if dialect == "numpy":
                return f"where({cond}, {then}, {orelse})"
            if dialect == "fortran":
                return f"merge({then}, {orelse}, {cond})"
            return f"({cond} ? {then} : {orelse})"
        if isinstance(node, Der):
            raise ValueError("Der nodes must be transformed away before codegen")
        raise TypeError(f"cannot print node type {type(node).__name__}")

    return walk(expr, 0)


def tree(expr: Expr, indent: str = "") -> str:
    """ASCII tree rendering, handy for debugging model transformations."""
    label = type(expr).__name__
    if isinstance(expr, Const):
        label += f" {expr.value}"
    elif isinstance(expr, Sym):
        label += f" {expr.name}"
    elif isinstance(expr, Call):
        label += f" {expr.fn}"
    elif isinstance(expr, (Rel, BoolOp)):
        label += f" {expr.op}"
    elif isinstance(expr, Reduce):
        label += f" {expr.family}[{expr.start}..{expr.start + expr.count - 1}]"
    lines = [indent + label]
    for child in expr.args:
        lines.append(tree(child, indent + "  "))
    return "\n".join(lines)
