"""Deeper algebraic simplification and expansion.

The canonicalising constructors in :mod:`repro.symbolic.expr` already do the
cheap local rewrites (constant folding, flattening, like-term collection).
This module adds the passes the code generator runs before CSE:

* :func:`simplify` — a bottom-up rebuild that re-triggers canonicalisation
  after substitution, folds constant conditionals and equal-branch
  conditionals, and short-circuits constant boolean structure,
* :func:`expand` — distributes products over sums and expands small integer
  powers of sums, which exposes shareable subexpressions to CSE.
"""

from __future__ import annotations

from .builders import if_then_else
from .expr import (
    Add,
    BoolOp,
    Call,
    Const,
    Expr,
    ITE,
    Mul,
    Pow,
    Rel,
    add,
    mul,
    pow_,
)

__all__ = ["simplify", "expand"]

_REL_FUNCS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def simplify(expr: Expr) -> Expr:
    """Rebuild ``expr`` bottom-up, applying structural simplifications."""
    cache: dict[Expr, Expr] = {}

    def walk(node: Expr) -> Expr:
        cached = cache.get(node)
        if cached is not None:
            return cached
        if not node.args:
            cache[node] = node
            return node
        new_args = tuple(walk(a) for a in node.args)
        result = _post(node, new_args)
        cache[node] = result
        return result

    return walk(expr)


def _post(node: Expr, args: tuple[Expr, ...]) -> Expr:
    if isinstance(node, Rel):
        lhs, rhs = args
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            return Const(1 if _REL_FUNCS[node.op](lhs.value, rhs.value) else 0)
        return node.with_args(args)
    if isinstance(node, BoolOp):
        if node.op == "not":
            (inner,) = args
            if isinstance(inner, Const):
                return Const(0 if inner.value else 1)
            return node.with_args(args)
        kept: list[Expr] = []
        for a in args:
            if isinstance(a, Const):
                truthy = bool(a.value)
                if node.op == "and" and not truthy:
                    return Const(0)
                if node.op == "or" and truthy:
                    return Const(1)
                continue  # neutral element, drop
            kept.append(a)
        if not kept:
            return Const(1 if node.op == "and" else 0)
        if len(kept) == 1:
            return kept[0]
        return BoolOp(node.op, tuple(kept))
    if isinstance(node, ITE):
        cond, then, orelse = args
        if isinstance(cond, Const):
            return then if cond.value else orelse
        if then == orelse:
            return then
        return ITE(cond, then, orelse)
    # Add / Mul / Pow / Call: the canonicalising rebuild is the simplification.
    return node.with_args(args)


_MAX_EXPAND_POWER = 6


def expand(expr: Expr) -> Expr:
    """Distribute products over sums; expand small positive integer powers
    of sums.  Conditionals, calls and relational structure are recursed into
    but not restructured."""
    cache: dict[Expr, Expr] = {}

    def walk(node: Expr) -> Expr:
        cached = cache.get(node)
        if cached is not None:
            return cached
        if not node.args:
            cache[node] = node
            return node
        args = tuple(walk(a) for a in node.args)
        if isinstance(node, Mul):
            result = _expand_mul(args)
        elif isinstance(node, Pow):
            result = _expand_pow(args[0], args[1])
        else:
            result = node.with_args(args)
        cache[node] = result
        return result

    return walk(expr)


def _expand_mul(factors: tuple[Expr, ...]) -> Expr:
    # Multiply out sums pairwise: keep a list of additive terms.
    terms: list[Expr] = [Const(1)]
    for factor in factors:
        summands = factor.args if isinstance(factor, Add) else (factor,)
        terms = [mul(t, s) for t in terms for s in summands]
        if len(terms) > 4096:
            # Safety valve: beyond this the expansion hurts more than helps.
            return mul(*factors)
    return add(*terms)


def _expand_pow(base: Expr, exponent: Expr) -> Expr:
    if (
        isinstance(base, Add)
        and isinstance(exponent, Const)
        and isinstance(exponent.value, int)
        and 2 <= exponent.value <= _MAX_EXPAND_POWER
    ):
        out: Expr = base
        for _ in range(exponent.value - 1):
            out = _expand_mul((out, base))
        return out
    return pow_(base, exponent)
