"""Symbolic differentiation.

Used to generate analytic Jacobian functions for the implicit BDF solver
(section 3.2.1 of the paper: "There is also a possibility for the user to
provide the solver with an extra function that computes the Jacobian …  If
the user can provide this function the computation time might be reduced
drastically").  Here the *code generator* plays the role of that user.
"""

from __future__ import annotations

from .builders import FUNCTIONS
from .expr import (
    Add,
    BoolOp,
    Call,
    Const,
    Der,
    Expr,
    ITE,
    Mul,
    Pow,
    Rel,
    Sym,
    ZERO,
    add,
    mul,
    pow_,
    sub,
)

__all__ = ["diff", "DiffError"]


class DiffError(ValueError):
    """Raised when an expression cannot be differentiated symbolically."""


def diff(expr: Expr, wrt: Sym) -> Expr:
    """Differentiate ``expr`` with respect to the symbol ``wrt``.

    Relational conditions are treated as locally constant (their derivative
    contribution is zero almost everywhere), which matches how ODE solvers
    treat switching functions between events.
    """
    if not isinstance(wrt, Sym):
        raise TypeError("can only differentiate with respect to a Sym")
    cache: dict[Expr, Expr] = {}

    def walk(node: Expr) -> Expr:
        cached = cache.get(node)
        if cached is not None:
            return cached
        result = _diff_node(node, wrt, walk)
        cache[node] = result
        return result

    return walk(expr)


def _diff_node(node: Expr, wrt: Sym, walk) -> Expr:
    if isinstance(node, Const):
        return ZERO
    if isinstance(node, Sym):
        return Const(1) if node == wrt else ZERO
    if isinstance(node, Add):
        return add(*(walk(a) for a in node.args))
    if isinstance(node, Mul):
        terms = []
        args = node.args
        for i, factor in enumerate(args):
            dfac = walk(factor)
            if dfac.is_zero:
                continue
            rest = args[:i] + args[i + 1 :]
            terms.append(mul(dfac, *rest))
        return add(*terms) if terms else ZERO
    if isinstance(node, Pow):
        base, exponent = node.base, node.exponent
        dbase = walk(base)
        dexp = walk(exponent)
        if dexp.is_zero:
            # d/dx base**c = c * base**(c-1) * dbase
            if dbase.is_zero:
                return ZERO
            return mul(exponent, pow_(base, sub(exponent, 1)), dbase)
        # General case: base**exp * (dexp*log(base) + exp*dbase/base)
        from .builders import log

        term1 = mul(dexp, log(base))
        term2 = mul(exponent, dbase, pow_(base, Const(-1)))
        return mul(node, add(term1, term2))
    if isinstance(node, Call):
        spec = FUNCTIONS.get(node.fn)
        if spec is None or spec.partial is None:
            raise DiffError(f"no derivative rule for function {node.fn!r}")
        terms = []
        for i, arg in enumerate(node.args):
            darg = walk(arg)
            if darg.is_zero:
                continue
            terms.append(mul(spec.partial(node.args, i), darg))
        return add(*terms) if terms else ZERO
    if isinstance(node, ITE):
        # Piecewise-smooth: differentiate each branch; the switching surface
        # itself has measure zero.
        return ITE(node.cond, walk(node.then), walk(node.orelse))
    if isinstance(node, (Rel, BoolOp)):
        return ZERO
    if isinstance(node, Der):
        raise DiffError("cannot differentiate an unexpanded Der node")
    raise DiffError(f"cannot differentiate node type {type(node).__name__}")
