"""Elementary function registry and user-facing expression builders.

The ObjectMath models exercised in the paper (hydro power plant, servo,
rolling bearings) need only the standard elementary functions.  Each function
registered here carries

* a numeric implementation (used by :mod:`repro.symbolic.subs` evaluation and
  by the generated Python code),
* a derivative rule (used by :mod:`repro.symbolic.diff` when generating
  analytic Jacobians for the implicit BDF solver),
* printing names for the Fortran 90 and C back ends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .expr import (
    Call,
    Const,
    Expr,
    ExprLike,
    ITE,
    ONE,
    Rel,
    Sym,
    add,
    as_expr,
    div,
    mul,
    neg,
    pow_,
    sub,
)


__all__ = [
    "FunctionSpec",
    "FUNCTIONS",
    "register_function",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "exp",
    "log",
    "sqrt",
    "abs_",
    "sign",
    "min_",
    "max_",
    "if_then_else",
    "symbols",
]


@dataclass(frozen=True)
class FunctionSpec:
    """Metadata for a named elementary function."""

    name: str
    arity: int
    impl: Callable[..., float]
    #: derivative rule: (args, arg_index) -> Expr for d f / d args[arg_index]
    partial: Callable[[tuple[Expr, ...], int], Expr] | None
    fortran_name: str | None = None
    c_name: str | None = None
    #: ufunc name in the vectorized NumPy back end (defaults to ``name``)
    numpy_name: str | None = None

    def numeric(self, *values: float) -> float:
        return self.impl(*values)


FUNCTIONS: dict[str, FunctionSpec] = {}


def register_function(spec: FunctionSpec) -> FunctionSpec:
    """Register ``spec`` in the global function table (name must be unique)."""
    if spec.name in FUNCTIONS:
        raise ValueError(f"function {spec.name!r} already registered")
    FUNCTIONS[spec.name] = spec
    return spec


def _call(name: str, *args: ExprLike) -> Expr:
    spec = FUNCTIONS[name]
    exprs = tuple(as_expr(a) for a in args)
    if len(exprs) != spec.arity:
        raise TypeError(f"{name} expects {spec.arity} argument(s), got {len(exprs)}")
    if all(isinstance(a, Const) for a in exprs):
        try:
            return Const(spec.impl(*(a.value for a in exprs)))  # type: ignore[union-attr]
        except (ValueError, OverflowError, ZeroDivisionError):
            pass  # keep symbolic (e.g. log of a negative constant)
    return Call(name, exprs)


# -- derivative rules --------------------------------------------------------


def _d_sin(args: tuple[Expr, ...], i: int) -> Expr:
    return _call("cos", args[0])


def _d_cos(args: tuple[Expr, ...], i: int) -> Expr:
    return neg(_call("sin", args[0]))


def _d_tan(args: tuple[Expr, ...], i: int) -> Expr:
    return add(1, pow_(_call("tan", args[0]), 2))


def _d_asin(args: tuple[Expr, ...], i: int) -> Expr:
    return pow_(sub(1, pow_(args[0], 2)), Const(-0.5))


def _d_acos(args: tuple[Expr, ...], i: int) -> Expr:
    return neg(pow_(sub(1, pow_(args[0], 2)), Const(-0.5)))


def _d_atan(args: tuple[Expr, ...], i: int) -> Expr:
    return div(1, add(1, pow_(args[0], 2)))


def _d_atan2(args: tuple[Expr, ...], i: int) -> Expr:
    y, x = args
    denom = add(pow_(x, 2), pow_(y, 2))
    if i == 0:
        return div(x, denom)
    return neg(div(y, denom))


def _d_sinh(args: tuple[Expr, ...], i: int) -> Expr:
    return _call("cosh", args[0])


def _d_cosh(args: tuple[Expr, ...], i: int) -> Expr:
    return _call("sinh", args[0])


def _d_tanh(args: tuple[Expr, ...], i: int) -> Expr:
    return sub(1, pow_(_call("tanh", args[0]), 2))


def _d_exp(args: tuple[Expr, ...], i: int) -> Expr:
    return _call("exp", args[0])


def _d_log(args: tuple[Expr, ...], i: int) -> Expr:
    return div(1, args[0])


def _d_sqrt(args: tuple[Expr, ...], i: int) -> Expr:
    return mul(Const(0.5), pow_(args[0], Const(-0.5)))


def _d_abs(args: tuple[Expr, ...], i: int) -> Expr:
    return _call("sign", args[0])


def _d_sign(args: tuple[Expr, ...], i: int) -> Expr:
    # Discontinuous at 0; zero a.e., which is the convention solvers expect.
    return Const(0)


def _d_min(args: tuple[Expr, ...], i: int) -> Expr:
    a, b = args
    picked = Rel("<=", a, b) if i == 0 else Rel("<", b, a)
    return ITE(picked, ONE, Const(0))


def _d_max(args: tuple[Expr, ...], i: int) -> Expr:
    a, b = args
    picked = Rel(">=", a, b) if i == 0 else Rel(">", b, a)
    return ITE(picked, ONE, Const(0))


def _sign_impl(value: float) -> float:
    if value > 0:
        return 1.0
    if value < 0:
        return -1.0
    return 0.0


for _spec in (
    FunctionSpec("sin", 1, math.sin, _d_sin, "sin", "sin"),
    FunctionSpec("cos", 1, math.cos, _d_cos, "cos", "cos"),
    FunctionSpec("tan", 1, math.tan, _d_tan, "tan", "tan"),
    FunctionSpec("asin", 1, math.asin, _d_asin, "asin", "asin", "arcsin"),
    FunctionSpec("acos", 1, math.acos, _d_acos, "acos", "acos", "arccos"),
    FunctionSpec("atan", 1, math.atan, _d_atan, "atan", "atan", "arctan"),
    FunctionSpec("atan2", 2, math.atan2, _d_atan2, "atan2", "atan2", "arctan2"),
    FunctionSpec("sinh", 1, math.sinh, _d_sinh, "sinh", "sinh"),
    FunctionSpec("cosh", 1, math.cosh, _d_cosh, "cosh", "cosh"),
    FunctionSpec("tanh", 1, math.tanh, _d_tanh, "tanh", "tanh"),
    FunctionSpec("exp", 1, math.exp, _d_exp, "exp", "exp"),
    FunctionSpec("log", 1, math.log, _d_log, "log", "log"),
    FunctionSpec("sqrt", 1, math.sqrt, _d_sqrt, "sqrt", "sqrt"),
    FunctionSpec("abs", 1, abs, _d_abs, "abs", "fabs", "absolute"),
    FunctionSpec("sign", 1, _sign_impl, _d_sign, "sign", "sign"),
    FunctionSpec("min", 2, min, _d_min, "min", "fmin", "minimum"),
    FunctionSpec("max", 2, max, _d_max, "max", "fmax", "maximum"),
):
    register_function(_spec)


# -- user-facing builders ----------------------------------------------------


def sin(x: ExprLike) -> Expr:
    return _call("sin", x)


def cos(x: ExprLike) -> Expr:
    return _call("cos", x)


def tan(x: ExprLike) -> Expr:
    return _call("tan", x)


def asin(x: ExprLike) -> Expr:
    return _call("asin", x)


def acos(x: ExprLike) -> Expr:
    return _call("acos", x)


def atan(x: ExprLike) -> Expr:
    return _call("atan", x)


def atan2(y: ExprLike, x: ExprLike) -> Expr:
    return _call("atan2", y, x)


def sinh(x: ExprLike) -> Expr:
    return _call("sinh", x)


def cosh(x: ExprLike) -> Expr:
    return _call("cosh", x)


def tanh(x: ExprLike) -> Expr:
    return _call("tanh", x)


def exp(x: ExprLike) -> Expr:
    return _call("exp", x)


def log(x: ExprLike) -> Expr:
    return _call("log", x)


def sqrt(x: ExprLike) -> Expr:
    return _call("sqrt", x)


def abs_(x: ExprLike) -> Expr:
    return _call("abs", x)


def sign(x: ExprLike) -> Expr:
    return _call("sign", x)


def min_(a: ExprLike, b: ExprLike) -> Expr:
    return _call("min", a, b)


def max_(a: ExprLike, b: ExprLike) -> Expr:
    return _call("max", a, b)


def if_then_else(cond: ExprLike, then: ExprLike, orelse: ExprLike) -> Expr:
    """Conditional expression; folds when the condition is a constant."""
    cond = as_expr(cond)
    if isinstance(cond, Const):
        return as_expr(then) if cond.value else as_expr(orelse)
    return ITE(cond, then, orelse)


def symbols(names: str) -> tuple[Sym, ...]:
    """Create several symbols at once: ``x, y = symbols("x y")``."""
    parts = names.replace(",", " ").split()
    if not parts:
        raise ValueError("no symbol names given")
    return tuple(Sym(p) for p in parts)
