"""Small fixed-size symbolic vectors.

The bearing models operate on physical 2- and 3-vectors ("Most of the arrays
used in the application are of size 1×3 or 3×3, since we are dealing with
physical three dimensional objects" — section 3.2).  Vector equations such as
``F[W[i]][BodyIr] + F[W[i]][BodyEr] + F[W[i]][Ext] == {0, 0, 0}`` (Figure 1)
are expanded component-wise during model flattening; :class:`Vec` is the
container that carries the components until then.

``Vec`` is deliberately *not* an :class:`~repro.symbolic.expr.Expr` — scalar
and vector worlds stay separated by type, and the flattener is the only
place where a vector equation turns into scalar equations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

from .builders import sqrt
from .expr import Expr, ExprLike, as_expr, add, mul, sub

__all__ = ["Vec", "VecLike", "dot", "cross", "norm", "vec2", "vec3", "zeros"]

VecLike = Union["Vec", Sequence[ExprLike]]


class Vec:
    """An immutable fixed-length vector of scalar expressions."""

    __slots__ = ("components",)

    def __init__(self, components: Iterable[ExprLike]) -> None:
        comps = tuple(as_expr(c) for c in components)
        if len(comps) < 1:
            raise ValueError("Vec needs at least one component")
        object.__setattr__(self, "components", comps)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Vec is immutable")

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self) -> Iterator[Expr]:
        return iter(self.components)

    def __getitem__(self, index: int) -> Expr:
        return self.components[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vec):
            return NotImplemented
        return self.components == other.components

    def __hash__(self) -> int:
        return hash(("Vec", self.components))

    def __repr__(self) -> str:
        inner = ", ".join(str(c) for c in self.components)
        return "{" + inner + "}"

    # -- arithmetic --------------------------------------------------------------

    def _check_len(self, other: "Vec") -> None:
        if len(self) != len(other):
            raise ValueError(
                f"vector length mismatch: {len(self)} vs {len(other)}"
            )

    def __add__(self, other: VecLike) -> "Vec":
        other = as_vec(other)
        self._check_len(other)
        return Vec(add(a, b) for a, b in zip(self, other))

    def __sub__(self, other: VecLike) -> "Vec":
        other = as_vec(other)
        self._check_len(other)
        return Vec(sub(a, b) for a, b in zip(self, other))

    def __mul__(self, scalar: ExprLike) -> "Vec":
        return Vec(mul(c, as_expr(scalar)) for c in self)

    def __rmul__(self, scalar: ExprLike) -> "Vec":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: ExprLike) -> "Vec":
        from .expr import div

        return Vec(div(c, as_expr(scalar)) for c in self)

    def __neg__(self) -> "Vec":
        return Vec(-c for c in self)


def as_vec(value: VecLike) -> Vec:
    """Coerce a sequence of scalars into a :class:`Vec`."""
    if isinstance(value, Vec):
        return value
    return Vec(value)


def vec2(x: ExprLike, y: ExprLike) -> Vec:
    return Vec((x, y))


def vec3(x: ExprLike, y: ExprLike, z: ExprLike) -> Vec:
    return Vec((x, y, z))


def zeros(n: int) -> Vec:
    return Vec([0] * n)


def dot(a: VecLike, b: VecLike) -> Expr:
    """Inner product of two equal-length vectors."""
    a, b = as_vec(a), as_vec(b)
    a._check_len(b)
    return add(*(mul(x, y) for x, y in zip(a, b)))


def cross(a: VecLike, b: VecLike) -> Union[Vec, Expr]:
    """Cross product.

    For 3-vectors this is the usual vector cross product; for 2-vectors it
    returns the scalar ``a.x*b.y - a.y*b.x`` (the out-of-plane component),
    which is what the planar bearing dynamics need for moment balances.
    """
    a, b = as_vec(a), as_vec(b)
    a._check_len(b)
    if len(a) == 2:
        return sub(mul(a[0], b[1]), mul(a[1], b[0]))
    if len(a) == 3:
        return Vec(
            (
                sub(mul(a[1], b[2]), mul(a[2], b[1])),
                sub(mul(a[2], b[0]), mul(a[0], b[2])),
                sub(mul(a[0], b[1]), mul(a[1], b[0])),
            )
        )
    raise ValueError("cross product defined only for 2- and 3-vectors")


def norm(a: VecLike) -> Expr:
    """Euclidean norm."""
    a = as_vec(a)
    return sqrt(dot(a, a))
