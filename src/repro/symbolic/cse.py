"""Common subexpression elimination.

Section 3.3 of the paper reports that CSE is decisive for the size of the
generated code: for the 2D bearing, *per-task* CSE (each equation scheduled
as a separate task, so nothing can be shared between tasks) extracts 4 642
subexpressions into 10 913 lines of Fortran 90, while *global* CSE over all
right-hand sides together extracts only 1 840 and yields 4 301 lines —
"different equations having several large subexpressions in common" that
per-task scheduling cannot share.

This module provides exactly that knob: :func:`cse` eliminates over one
scope (a list of expressions that will live in the same task), and
:func:`cse_grouped` runs it per group so both the parallel (per-task) and
serial (global) code-generation modes of the paper can be reproduced and
measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .expr import Const, Expr, Mul, Pow, Sym
from .nodecount import op_count

__all__ = ["CseResult", "cse", "cse_grouped"]


@dataclass(frozen=True)
class CseResult:
    """Result of one CSE pass.

    ``replacements`` is an ordered list of ``(temp_symbol, definition)``
    pairs in valid evaluation order (later temps may reference earlier
    ones); ``exprs`` are the input expressions rewritten in terms of the
    temporaries.
    """

    replacements: tuple[tuple[Sym, Expr], ...]
    exprs: tuple[Expr, ...]

    @property
    def num_extracted(self) -> int:
        return len(self.replacements)


def _is_extractable(node: Expr, min_ops: int) -> bool:
    """Whether ``node`` is worth naming.

    Leaves are never extracted.  A bare negation/scaling (``c * x``) or a
    small integer power of a symbol costs no more to recompute than to load,
    so they are skipped unless the caller lowers ``min_ops`` to zero.
    """
    if not node.args:
        return False
    if isinstance(node, Mul) and len(node.args) == 2:
        a, b = node.args
        if isinstance(a, Const) and isinstance(b, Sym):
            return min_ops <= 0
    if isinstance(node, Pow) and isinstance(node.base, Sym) and isinstance(
        node.exponent, Const
    ):
        return min_ops <= 0
    return op_count(node) >= min_ops


def cse(
    exprs: Sequence[Expr],
    symbol_prefix: str = "cse",
    min_ops: int = 1,
    start_index: int = 0,
) -> CseResult:
    """Eliminate common subexpressions across ``exprs`` (one shared scope).

    Counts how many distinct *parent references* each subexpression has
    across the whole forest; any compound subexpression referenced at least
    twice (and worth at least ``min_ops`` operations) is hoisted into a
    fresh temporary ``{symbol_prefix}{i}``.
    """
    counts: dict[Expr, int] = {}
    seen: set[Expr] = set()

    def count(node: Expr) -> None:
        if not node.args:
            return
        counts[node] = counts.get(node, 0) + 1
        if node in seen:
            # children already accounted for via the first occurrence
            return
        seen.add(node)
        for child in node.args:
            count(child)

    for expr in exprs:
        count(expr)

    to_extract = {
        node
        for node, n in counts.items()
        if n >= 2 and _is_extractable(node, min_ops)
    }
    if not to_extract:
        return CseResult((), tuple(exprs))

    replacements: list[tuple[Sym, Expr]] = []
    mapping: dict[Expr, Expr] = {}
    rebuilt: dict[Expr, Expr] = {}
    index = start_index

    def rebuild(node: Expr) -> Expr:
        nonlocal index
        hit = mapping.get(node)
        if hit is not None:
            return hit
        cached = rebuilt.get(node)
        if cached is not None:
            return cached
        if not node.args:
            rebuilt[node] = node
            return node
        new_args = tuple(rebuild(a) for a in node.args)
        if all(n is o for n, o in zip(new_args, node.args)):
            new_node = node
        else:
            new_node = node.with_args(new_args)
        if node in to_extract:
            temp = Sym(f"{symbol_prefix}{index}")
            index += 1
            replacements.append((temp, new_node))
            mapping[node] = temp
            return temp
        rebuilt[node] = new_node
        return new_node

    out = tuple(rebuild(e) for e in exprs)
    return CseResult(tuple(replacements), out)


def cse_grouped(
    groups: Sequence[Sequence[Expr]],
    symbol_prefix: str = "cse",
    min_ops: int = 1,
) -> list[CseResult]:
    """Run :func:`cse` independently over each group of expressions.

    This models the *parallel* code-generation mode of the paper: each group
    is one task, and "no subexpressions are shared between the tasks"
    (section 3.2).  Temporary names are globally unique across groups so the
    results can be emitted into one program.
    """
    results: list[CseResult] = []
    next_index = 0
    for group in groups:
        result = cse(
            list(group),
            symbol_prefix=symbol_prefix,
            min_ops=min_ops,
            start_index=next_index,
        )
        next_index += result.num_extracted
        results.append(result)
    return results
