"""Language front end tests: lexer, parser, AST lowering, diagnostics."""

import pytest

from repro.language import (
    LexError,
    ParseError,
    TokenKind,
    load_model,
    parse_model,
    tokenize,
)
from repro.symbolic import Const, Der, ITE, Rel, Sym, evaluate, sin


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("x := 1.5e2 + foo;")
        kinds = [t.kind for t in toks]
        assert kinds == [
            TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.NUMBER,
            TokenKind.PLUS, TokenKind.IDENT, TokenKind.SEMI, TokenKind.EOF,
        ]
        assert toks[2].value == 150.0

    def test_keywords_recognised(self):
        toks = tokenize("MODEL CLASS foo END")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[2].kind is TokenKind.IDENT

    def test_comments_skipped_and_nested(self):
        toks = tokenize("a (* outer (* inner *) still out *) b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a (* never closed")

    def test_operators(self):
        toks = tokenize("== != <= >= < > ^ { } [ ]")
        kinds = [t.kind for t in toks[:-1]]
        assert kinds == [
            TokenKind.EQUALS, TokenKind.NOTEQ, TokenKind.LE, TokenKind.GE,
            TokenKind.LT, TokenKind.GT, TokenKind.CARET, TokenKind.LBRACE,
            TokenKind.RBRACE, TokenKind.LBRACKET, TokenKind.RBRACKET,
        ]

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_number_forms(self):
        toks = tokenize("1 2.5 3e-4 0.5")
        values = [t.value for t in toks[:-1]]
        assert values == [1.0, 2.5, 3e-4, 0.5]


_OSC = """
MODEL demo;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
INSTANCE B INHERITS Osc (k := 9.0);
END demo;
"""


class TestParser:
    def test_model_structure(self):
        tree = parse_model(_OSC)
        assert tree.name == "demo"
        assert len(tree.classes) == 1
        assert len(tree.instances) == 2
        osc = tree.classes[0]
        assert [m.name for m in osc.members] == ["x", "v", "k"]
        assert osc.equations[0].label == "Eq[1]"

    def test_expression_precedence(self):
        tree = parse_model(
            "MODEL m; CLASS C STATE x := 0.0;"
            " EQUATION der(x) == 1 + 2 * x ^ 2; END C;"
            " INSTANCE I INHERITS C; END m;"
        )
        rhs = tree.classes[0].equations[0].rhs
        x = Sym("x")
        assert rhs == 1 + 2 * x**2

    def test_unary_minus_power(self):
        tree = parse_model(
            "MODEL m; CLASS C STATE x := 0.0;"
            " EQUATION der(x) == -x ^ 2; END m_oops; END m;"
            .replace("END m_oops;", "END C;")
        )
        rhs = tree.classes[0].equations[0].rhs
        x = Sym("x")
        assert rhs == -(x**2)

    def test_if_then_else(self):
        tree = parse_model(
            "MODEL m; CLASS C STATE x := 0.0;"
            " EQUATION der(x) == IF x > 0 THEN x ELSE -x; END C;"
            " INSTANCE I INHERITS C; END m;"
        )
        rhs = tree.classes[0].equations[0].rhs
        assert isinstance(rhs, ITE)

    def test_functions(self):
        tree = parse_model(
            "MODEL m; CLASS C STATE x := 0.0;"
            " EQUATION der(x) == sin(x) + sqrt(x * x); END C;"
            " INSTANCE I INHERITS C; END m;"
        )
        rhs = tree.classes[0].equations[0].rhs
        assert evaluate(rhs, {"x": 0.5}) == pytest.approx(
            __import__("math").sin(0.5) + 0.5
        )

    def test_indexed_reference(self):
        tree = parse_model(
            "MODEL m; INSTANCE W [ 2 ] INHERITS C;"
            " EQUATION W[1].x == W[2].x; END m;"
            .replace("INSTANCE W [ 2 ] INHERITS C;",
                     "CLASS C STATE x := 0.0; EQUATION der(x) == x; END C;"
                     " INSTANCE W[2] INHERITS C;")
        )
        eq = tree.equations[0]
        assert eq.lhs == Sym("W1.x")
        assert eq.rhs == Sym("W2.x")

    def test_end_name_mismatch(self):
        with pytest.raises(ParseError, match="does not match"):
            parse_model("MODEL m; END n;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_model("MODEL m END m;")

    def test_unknown_token_in_class(self):
        with pytest.raises(ParseError, match="declaration"):
            parse_model("MODEL m; CLASS C MODEL END C; END m;")

    def test_parameter_without_default(self):
        with pytest.raises(ParseError, match="default"):
            parse_model(
                "MODEL m; CLASS C PARAMETER k; END C; END m;"
            )

    def test_vector_literal_lengths(self):
        tree = parse_model(
            "MODEL m; CLASS C STATE r[2] := {1.0, 2.0};"
            " EQUATION der(r) == {0.0, 0.0}; END C;"
            " INSTANCE I INHERITS C; END m;"
        )
        member = tree.classes[0].members[0]
        assert member.length == 2
        assert member.default == (1.0, 2.0)


class TestBuild:
    def test_full_pipeline(self):
        model = load_model(_OSC)
        flat = model.flatten()
        assert set(flat.parameters) == {"A.k", "B.k"}
        assert flat.parameters["B.k"].value == 9.0

    def test_vector_member_vectorisation(self):
        src = """
        MODEL m;
        CLASS Body
          STATE r[2] := {0.0, 1.0};
          STATE v[2];
          ALGEBRAIC F[2];
          PARAMETER mass := 2.0;
          EQUATION der(r) == v;
          EQUATION der(v) == F / mass;
          EQUATION F == {0.0, -9.81} * mass;
        END Body;
        INSTANCE P INHERITS Body;
        END m;
        """
        flat = load_model(src).flatten()
        assert len(flat.odes) == 4
        assert len(flat.explicit_algs) == 2
        inlined = flat.inline_algebraics()
        rhs = {eq.state: eq.rhs for eq in inlined.odes}["P.v.y"]
        assert evaluate(rhs, {}) == pytest.approx(-9.81)

    def test_vector_sum_of_members(self):
        src = """
        MODEL m;
        CLASS Body
          STATE r[2];
          ALGEBRAIC Fa[2];
          ALGEBRAIC Fb[2];
          EQUATION der(r) == Fa + Fb;
          EQUATION Fa == {1.0, 2.0};
          EQUATION Fb == {3.0, 4.0};
        END Body;
        INSTANCE P INHERITS Body;
        END m;
        """
        flat = load_model(src).flatten().inline_algebraics()
        rhs = {eq.state: eq.rhs for eq in flat.odes}
        assert evaluate(rhs["P.r.x"], {}) == 4.0
        assert evaluate(rhs["P.r.y"], {}) == 6.0

    def test_inheritance_in_source(self):
        src = """
        MODEL m;
        CLASS Base
          STATE x := 1.0;
          EQUATION der(x) == -x;
        END Base;
        CLASS Derived INHERITS Base
          PARAMETER gain := 2.0;
        END Derived;
        INSTANCE D INHERITS Derived;
        END m;
        """
        flat = load_model(src).flatten()
        assert "D.x" in flat.states
        assert "D.gain" in flat.parameters

    def test_composition_in_source(self):
        src = """
        MODEL m;
        CLASS Wheel
          STATE w := 1.0;
          EQUATION der(w) == -w;
        END Wheel;
        CLASS Car
          PART front : Wheel;
          PART rear : Wheel;
        END Car;
        INSTANCE C INHERITS Car;
        END m;
        """
        flat = load_model(src).flatten()
        assert set(flat.states) == {"C.front.w", "C.rear.w"}

    def test_unknown_base_class(self):
        with pytest.raises(ParseError, match="unknown base"):
            load_model("MODEL m; CLASS C INHERITS Ghost END C; END m;")

    def test_unknown_instance_class(self):
        with pytest.raises(ParseError, match="unknown class"):
            load_model("MODEL m; INSTANCE I INHERITS Ghost; END m;")

    def test_extra_classes_registry(self):
        from repro.model import ModelClass

        ext = ModelClass("External")
        x = ext.state("x", start=1.0)
        ext.ode(x, -x)
        model = load_model(
            "MODEL m; INSTANCE I INHERITS External; END m;",
            extra_classes={"External": ext},
        )
        assert "I.x" in model.flatten().states

    def test_global_equation_with_vectors(self):
        src = """
        MODEL m;
        CLASS Body
          STATE r[2];
          ALGEBRAIC F[2];
          EQUATION der(r) == F;
        END Body;
        INSTANCE A INHERITS Body;
        INSTANCE B INHERITS Body;
        EQUATION A.F == {1.0, 0.0};
        EQUATION B.F == A.F * 2.0;
        END m;
        """
        flat = load_model(src).flatten().inline_algebraics()
        rhs = {eq.state: eq.rhs for eq in flat.odes}
        assert evaluate(rhs["B.r.x"], {}) == 2.0
