"""Coverage for assorted corners: message accounting, simulator reports,
pipeline report fields, Fortran emission details, verify report."""

import numpy as np
import pytest

from repro.analysis import PipelineReport, simulate_pipeline, partition
from repro.codegen import (
    generate_fortran,
    make_ode_system,
    verify_compilable,
)
from repro.runtime import (
    FLOAT_BYTES,
    IDEAL_MACHINE,
    MessageStats,
    RunReport,
    broadcast_bytes,
    gather_bytes,
    simulate_round,
    simulate_run,
)
from repro.schedule import Task, TaskGraph, lpt_schedule


def _graph(weights, deps=None):
    deps = deps or {}
    return TaskGraph(
        [
            Task(i, f"t{i}", (f"der:s{i}",), ("s0", "s1"), w,
                 depends_on=tuple(deps.get(i, ())))
            for i, w in enumerate(weights)
        ]
    )


class TestMessageAccounting:
    def test_float_width(self):
        assert FLOAT_BYTES == 8

    def test_message_stats_addition(self):
        total = MessageStats(2, 100) + MessageStats(3, 50)
        assert total.num_messages == 5
        assert total.total_bytes == 150

    def test_broadcast_includes_time_slot(self):
        assert broadcast_bytes(0) == 8  # just t

    def test_gather_skips_idle_workers(self):
        g = _graph([1.0])
        s = lpt_schedule(g, 4)  # 3 workers idle
        stats = gather_bytes(g, s, num_states=1)
        assert stats.num_messages == 2  # one down + one up


class TestSimulatorReports:
    def test_round_breakdown_fields(self):
        g = _graph([1e-3, 2e-3])
        b = simulate_round(g, lpt_schedule(g, 2), IDEAL_MACHINE, 2)
        assert b.num_workers == 2
        assert b.compute_time == pytest.approx(2e-3)
        assert b.rhs_calls_per_second == pytest.approx(1.0 / b.round_time)
        assert len(b.worker_finish) == 2

    def test_run_report_mean(self):
        g = _graph([1e-3])
        report = simulate_run(g, IDEAL_MACHINE, 1, 1, num_rounds=5)
        assert report.mean_round_time == pytest.approx(
            report.total_time / 5
        )
        assert isinstance(report, RunReport)

    def test_zero_weight_tasks(self):
        g = _graph([0.0, 0.0])
        b = simulate_round(g, lpt_schedule(g, 1), IDEAL_MACHINE, 2)
        assert b.round_time == 0.0
        assert b.rhs_calls_per_second == 0.0


class TestPipelineReportFields:
    def test_report_strings_and_bounds(self, servo_model):
        part = partition(servo_model.flatten())
        costs = [1.0] * part.num_subsystems
        report = simulate_pipeline(part, costs, num_steps=10)
        assert isinstance(report, PipelineReport)
        assert report.bottleneck_cost == 1.0
        assert "pipeline" in str(report)
        assert report.pipelined_time >= sum(costs)  # first step fills

    def test_mapping_costs_accepted(self, servo_model):
        part = partition(servo_model.flatten())
        costs = {i: 1.0 for i in range(part.num_subsystems)}
        report = simulate_pipeline(part, costs, num_steps=10)
        assert report.num_stages == part.num_subsystems


class TestFortranEmissionDetails:
    def test_start_values_annotated(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        f90 = generate_fortran(system, mode="serial")
        assert "y0(1) = 1.0_dp  ! A.x" in f90.source

    def test_intent_declarations(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        f90 = generate_fortran(system, mode="serial")
        assert "real(dp), intent(in) :: yin(4)" in f90.source
        assert "real(dp), intent(out) :: yout(4)" in f90.source

    def test_stats_sum(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        f90 = generate_fortran(system, mode="serial")
        assert (
            f90.num_declaration_lines + f90.num_statement_lines
            == f90.num_lines
        )
        assert "Fortran90[serial]" in str(f90)


class TestVerifyReport:
    def test_report_fields(self, compiled_powerplant):
        report = verify_compilable(compiled_powerplant.system)
        assert report.num_rhs == compiled_powerplant.system.num_states
        assert report.num_nodes > report.num_rhs
        assert "sqrt" in report.functions_used
        assert all(isinstance(s, str) for s in report.symbols_used)


class TestTaskGraphMisc:
    def test_iteration_and_indexing(self):
        g = _graph([1.0, 2.0])
        assert len(g) == 2
        assert [t.task_id for t in g] == [0, 1]
        assert g[1].weight == 2.0

    def test_task_str(self):
        t = Task(0, "roller", ("der:x",), ("x",), 0.5)
        assert "roller" in str(t)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Task(0, "t", (), (), -1.0)

    def test_dependency_levels_diamond(self):
        from repro.runtime import dependency_levels

        g = _graph([1.0, 1.0, 1.0, 1.0], deps={1: [0], 2: [0], 3: [1, 2]})
        levels = dependency_levels(g)
        assert levels == [[0], [1, 2], [3]]
