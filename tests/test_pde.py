"""Tests of the method-of-lines PDE extension (the paper's section-6
future work): grids, stencils, boundary conditions, and validated
solutions of heat, advection and Burgers problems through the full
pipeline."""

import math

import numpy as np
import pytest

from repro.analysis import partition
from repro.codegen import generate_program, make_ode_system
from repro.pde import BoundaryCondition, Grid1D, PdeField, PdeProblem
from repro.solver import ColoredFiniteDifferenceJacobian, solve_ivp
from repro.symbolic import evaluate


class TestGrid:
    def test_spacing(self):
        grid = Grid1D(11, 0.0, 1.0)
        assert grid.dx == pytest.approx(0.1)
        assert grid.x(0) == 0.0
        assert grid.x(10) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid1D(2)
        with pytest.raises(ValueError):
            Grid1D(5, 1.0, 0.0)
        with pytest.raises(IndexError):
            Grid1D(5).x(5)

    def test_interior(self):
        assert list(Grid1D(5).interior()) == [1, 2, 3]


class TestStencils:
    def _problem(self, n=5, left=None, right=None):
        grid = Grid1D(n, 0.0, 1.0)
        prob = PdeProblem(grid)
        fld = PdeField(
            "u",
            initial=lambda x: x,
            left=left or BoundaryCondition("dirichlet", 0.0),
            right=right or BoundaryCondition("dirichlet", 0.0),
        )
        return grid, prob, fld

    def test_central_derivative_exact_for_linear(self):
        # Boundary values must agree with the test data u = x.
        grid, prob, fld = self._problem(
            right=BoundaryCondition("dirichlet", 1.0)
        )
        prob.add(fld, lambda ctx: ctx.ddx(fld))
        flat = prob.discretize()
        # With u = x on the nodes, du/dx must be exactly 1 at interior
        # nodes (second-order stencil is exact for linear data).
        env = {fld.node_name(i): grid.x(i) for i in range(5)}
        for eq in flat.odes:
            i = int(eq.state.split("[")[1].rstrip("]"))
            if 1 <= i <= 3:
                assert evaluate(eq.rhs, env) == pytest.approx(1.0)

    def test_second_derivative_exact_for_quadratic(self):
        # Boundary values must agree with the test data u = x^2.
        grid, prob, fld = self._problem(
            right=BoundaryCondition("dirichlet", 1.0)
        )
        prob.add(fld, lambda ctx: ctx.d2dx2(fld))
        flat = prob.discretize()
        env = {fld.node_name(i): grid.x(i) ** 2 for i in range(5)}
        for eq in flat.odes:
            i = int(eq.state.split("[")[1].rstrip("]"))
            if 1 <= i <= 3:
                assert evaluate(eq.rhs, env) == pytest.approx(2.0)

    def test_dirichlet_boundary_folded_as_constant(self):
        grid = Grid1D(5)
        prob = PdeProblem(grid)
        fld = PdeField("u", initial=lambda x: 0.0,
                       left=BoundaryCondition("dirichlet", 7.0))
        prob.add(fld, lambda ctx: ctx.d2dx2(fld))
        flat = prob.discretize()
        # Node 0 is not a state; the node-1 stencil embeds the constant 7.
        assert "u[0]" not in flat.states
        eq1 = next(e for e in flat.odes if e.state == "u[1]")
        env = {f"u[{i}]": 0.0 for i in (1, 2, 3)}
        assert evaluate(eq1.rhs, env) == pytest.approx(7.0 / grid.dx**2)

    def test_neumann_boundary_keeps_node_as_state(self):
        grid = Grid1D(5)
        prob = PdeProblem(grid)
        fld = PdeField("u", initial=lambda x: 1.0,
                       left=BoundaryCondition("neumann", 0.0))
        prob.add(fld, lambda ctx: ctx.d2dx2(fld))
        flat = prob.discretize()
        assert "u[0]" in flat.states
        # Zero-gradient mirror: with uniform data the Laplacian vanishes
        # at the Neumann boundary node too.
        eq0 = next(e for e in flat.odes if e.state == "u[0]")
        env = {f"u[{i}]": 1.0 for i in range(5)}
        assert evaluate(eq0.rhs, env) == pytest.approx(0.0)

    def test_bad_bc_rejected(self):
        with pytest.raises(ValueError):
            BoundaryCondition("robin")

    def test_duplicate_field_rejected(self):
        grid = Grid1D(5)
        prob = PdeProblem(grid)
        fld = PdeField("u", initial=lambda x: 0.0)
        prob.add(fld, lambda ctx: ctx.value(fld))
        with pytest.raises(ValueError):
            prob.add(PdeField("u", initial=lambda x: 0.0),
                     lambda ctx: 0)

    def test_empty_problem_rejected(self):
        with pytest.raises(ValueError):
            PdeProblem(Grid1D(5)).discretize()


class TestHeatEquation:
    def test_matches_analytic_solution(self):
        """u_t = a u_xx, u(0)=u(1)=0, u0 = sin(pi x):
        u(x, t) = exp(-pi^2 a t) sin(pi x)."""
        alpha = 0.1
        grid = Grid1D(41, 0.0, 1.0)
        prob = PdeProblem(grid, name="heat")
        fld = PdeField("u", initial=lambda x: math.sin(math.pi * x))
        prob.add(fld, lambda ctx: alpha * ctx.d2dx2(fld))
        flat = prob.discretize()
        system = make_ode_system(flat)
        program = generate_program(system)
        f = program.make_rhs()
        jac = ColoredFiniteDifferenceJacobian(f, system)
        assert jac.num_colors == 3  # tridiagonal
        r = solve_ivp(f, (0.0, 0.5), program.start_vector(), method="bdf",
                      rtol=1e-8, atol=1e-11, jac=jac)
        assert r.success
        decay = math.exp(-math.pi**2 * alpha * 0.5)
        for i in (10, 20, 30):
            value = r.y_final[system.state_names.index(f"u[{i}]")]
            exact = decay * math.sin(math.pi * grid.x(i))
            assert value == pytest.approx(exact, abs=3e-4)  # O(dx^2)

    def test_convergence_second_order(self):
        alpha = 0.1

        def midpoint_error(n):
            grid = Grid1D(n, 0.0, 1.0)
            prob = PdeProblem(grid)
            fld = PdeField("u", initial=lambda x: math.sin(math.pi * x))
            prob.add(fld, lambda ctx: alpha * ctx.d2dx2(fld))
            system = make_ode_system(prob.discretize())
            program = generate_program(system)
            r = solve_ivp(program.make_rhs(), (0.0, 0.2),
                          program.start_vector(), method="bdf",
                          rtol=1e-10, atol=1e-13)
            mid = (n - 1) // 2
            exact = math.exp(-math.pi**2 * alpha * 0.2) * math.sin(
                math.pi * grid.x(mid)
            )
            return abs(r.y_final[system.state_names.index(f"u[{mid}]")]
                       - exact)

        e_coarse = midpoint_error(11)
        e_fine = midpoint_error(21)
        rate = math.log2(e_coarse / e_fine)
        assert 1.6 < rate < 2.6  # second-order spatial convergence


class TestAdvection:
    def test_upwind_chain_is_pipeline_parallel(self):
        grid = Grid1D(30)
        prob = PdeProblem(grid, name="advect")
        fld = PdeField("v", initial=lambda x: math.exp(-100 * (x - 0.2) ** 2))
        prob.add(fld, lambda ctx: -1.0 * ctx.ddx_upwind(fld, 1.0))
        flat = prob.discretize()
        part = partition(flat)
        # One-way coupling: every node its own SCC, a deep chain.
        assert part.num_subsystems == flat.num_states
        assert part.num_levels == flat.num_states

    def test_pulse_transport(self):
        grid = Grid1D(101, 0.0, 1.0)
        prob = PdeProblem(grid, name="advect")
        fld = PdeField("v", initial=lambda x: math.exp(-200 * (x - 0.2) ** 2))
        prob.add(fld, lambda ctx: -1.0 * ctx.ddx_upwind(fld, 1.0))
        system = make_ode_system(prob.discretize())
        program = generate_program(system)
        r = solve_ivp(program.make_rhs(), (0.0, 0.4),
                      program.start_vector(), method="rk45",
                      rtol=1e-7, atol=1e-10)
        assert r.success
        values = {
            name: v for name, v in zip(system.state_names, r.y_final)
        }
        peak_node = max(values, key=values.get)
        peak_x = grid.x(int(peak_node.split("[")[1].rstrip("]")))
        # The pulse moved from x = 0.2 to about x = 0.6 (upwind smears,
        # but the peak location is robust).
        assert peak_x == pytest.approx(0.6, abs=0.05)


class TestBurgers:
    def test_shock_steepening_remains_stable(self):
        """Viscous Burgers u_t = -u u_x + nu u_xx — the 'fluid dynamics'
        flavour of the paper's PDE outlook; nonlinear, solved with LSODA
        through the generated code."""
        nu = 0.01
        grid = Grid1D(61, 0.0, 1.0)
        prob = PdeProblem(grid, name="burgers")
        fld = PdeField("u", initial=lambda x: math.sin(math.pi * x))
        prob.add(
            fld,
            lambda ctx: -1.0 * ctx.value(fld) * ctx.ddx(fld)
            + nu * ctx.d2dx2(fld),
        )
        system = make_ode_system(prob.discretize())
        program = generate_program(system)
        r = solve_ivp(program.make_rhs(), (0.0, 0.8),
                      program.start_vector(), method="lsoda",
                      rtol=1e-6, atol=1e-9)
        assert r.success
        # Energy decays under viscosity; solution stays bounded by the
        # initial maximum (maximum principle).
        assert np.max(np.abs(r.y_final)) <= 1.0 + 1e-6
        assert np.linalg.norm(r.y_final) < np.linalg.norm(r.ys[0])
