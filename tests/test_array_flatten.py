"""Array-aware IR equivalence suite.

The array flatten mode must be a pure compile-time optimisation: every
observable — scalarized equation sets, generated-code derivatives, SCC
block structure — matches scalar enumeration, while the symbolic
artifacts stay sized by class structure.  Symbolic identities (scalarize,
``ArraySystem.expand``) are exact; generated-code comparisons allow
1e-12 relative difference because the reduce loops accumulate family sums
in member order whereas the canonical n-ary ``add`` evaluates in sorted
key order.
"""

import numpy as np
import pytest

from repro.analysis import (
    build_array_dependency_graph,
    build_dependency_graph,
    strongly_connected_components,
)
from repro.apps import (
    BearingParams,
    build_bearing2d,
    build_bearing3d,
    build_powerplant,
    build_servo,
)
from repro.codegen.costmodel import CostModel
from repro.codegen.transform import make_array_system, make_ode_system
from repro.frontend import compile_model
from repro.model.arrays import expand_reduces, has_reduce
from repro.model.flatten import ArrayFlatModel, flatten_model
from repro.symbolic.expr import Reduce, Sym, add, mul
from repro.symbolic.nodecount import op_histogram
from repro.symbolic.serialize import expr_from_obj, expr_to_obj

APP_BUILDERS = {
    "bearing2d": build_bearing2d,
    "bearing3d": build_bearing3d,
    "powerplant": build_powerplant,
    "servo": build_servo,
}

RTOL = 1e-12


def _perturbed_state(program, seed=0):
    rng = np.random.default_rng(seed)
    y0 = np.asarray(program.start_vector(), dtype=float)
    return y0 + 0.01 * (1.0 + np.abs(y0)) * rng.standard_normal(y0.size)


def _rel_diff(a, b):
    return float(np.max(np.abs(a - b) / (1.0 + np.abs(b))))


class TestFlattenEquivalence:
    @pytest.mark.parametrize("app", sorted(APP_BUILDERS))
    def test_scalarize_is_bit_identical_to_scalar_flatten(self, app):
        """The scalarized array flat model IS the scalar oracle's output."""
        aflat = flatten_model(APP_BUILDERS[app](), mode="array")
        sflat = flatten_model(APP_BUILDERS[app](), mode="scalar")
        assert isinstance(aflat, ArrayFlatModel)
        lowered = aflat.scalarize()
        assert list(lowered.states) == list(sflat.states)
        assert [(e.state, e.rhs) for e in lowered.odes] == [
            (e.state, e.rhs) for e in sflat.odes
        ]
        assert [(e.var, e.rhs) for e in lowered.explicit_algs] == [
            (e.var, e.rhs) for e in sflat.explicit_algs
        ]
        assert aflat.num_equations == sflat.num_equations

    def test_array_flatten_size_tracks_class_structure(self):
        small = flatten_model(
            build_bearing2d(BearingParams(num_rollers=10)), mode="array"
        )
        large = flatten_model(
            build_bearing2d(BearingParams(num_rollers=100)), mode="array"
        )
        assert small.num_symbolic_equations == large.num_symbolic_equations
        assert large.slice_cardinalities() == {"W": 100}
        assert large.expansion_factor > small.expansion_factor

    def test_singleton_family_sums_stay_symbolic(self):
        """The ring force balance keeps one Reduce node per component."""
        aflat = flatten_model(
            build_bearing2d(BearingParams(num_rollers=100)), mode="array"
        )
        assert aflat.fallback_reason is None
        reduced = [
            eq for eq in aflat.odes + aflat.explicit_algs
            if has_reduce(eq.rhs)
        ]
        assert reduced, "expected symbolic family sums in ring equations"
        # and the implicit stream never carries them
        for eq in aflat.implicit:
            assert not has_reduce(eq.lhs) and not has_reduce(eq.rhs)

    def test_expand_matches_scalar_ode_system(self):
        """ArraySystem.expand() reproduces the scalar oracle exactly."""
        for n in (4, 11):
            params = BearingParams(num_rollers=n)
            aflat = flatten_model(build_bearing2d(params), mode="array")
            array_sys = make_array_system(aflat)
            scalar_sys = make_ode_system(
                flatten_model(build_bearing2d(params), mode="scalar")
            )
            expanded = array_sys.expand()
            assert expanded.state_names == scalar_sys.state_names
            assert expanded.rhs == scalar_sys.rhs  # hash-consed equality
            assert expanded.start_values == scalar_sys.start_values


class TestGeneratedCodeEquivalence:
    @pytest.mark.parametrize("app", sorted(APP_BUILDERS))
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_rhs_matches_scalar_mode(self, app, backend):
        build = APP_BUILDERS[app]
        ca = compile_model(build(), backend=backend, flatten_mode="array")
        cs = compile_model(build(), backend=backend, flatten_mode="scalar")
        pa, ps = ca.program, cs.program
        n = pa.num_states
        y = _perturbed_state(ps)
        p = np.asarray(ps.param_vector(), dtype=float)
        oa, os_ = np.empty(n), np.empty(n)
        pa.module.rhs(0.3, y, p, oa)
        ps.module.rhs(0.3, y, p, os_)
        assert _rel_diff(oa, os_) < RTOL

        if backend == "numpy":
            Y = np.stack([y, y + 0.005])
            out = np.empty_like(Y)
            pa.vector_module.rhs_v(0.3, Y, p, out)
            for lane in range(2):
                ref = np.empty(n)
                ps.module.rhs(0.3, Y[lane], p, ref)
                assert _rel_diff(out[lane], ref) < RTOL

    @pytest.mark.parametrize("app", ["bearing2d", "bearing3d"])
    def test_task_path_matches_serial(self, app):
        """Every task-written slot agrees with the serial RHS."""
        ca = compile_model(
            APP_BUILDERS[app](), backend="python", flatten_mode="array"
        )
        pa = ca.program
        n = pa.num_states
        y = _perturbed_state(pa, seed=3)
        p = np.asarray(pa.param_vector(), dtype=float)
        serial = np.empty(n)
        pa.module.rhs(0.3, y, p, serial)
        res = np.zeros(n + pa.num_partials)
        for task in pa.module.tasks:
            task(0.3, y, p, res)
        assert _rel_diff(res[:n], serial) < RTOL

    def test_batch_axis_composes_with_member_axis(self):
        """(batch, n) lanes each match an independent scalar evaluation."""
        build = lambda: build_bearing2d(BearingParams(num_rollers=7))
        ca = compile_model(build(), backend="numpy", flatten_mode="array")
        cs = compile_model(build(), backend="python", flatten_mode="scalar")
        pa, ps = ca.program, cs.program
        n = pa.num_states
        rng = np.random.default_rng(7)
        y0 = np.asarray(ps.start_vector(), dtype=float)
        Y = y0[None, :] + 0.02 * (1 + np.abs(y0)) * rng.standard_normal(
            (5, n)
        )
        p = np.asarray(ps.param_vector(), dtype=float)
        out = np.empty_like(Y)
        pa.vector_module.rhs_v(0.1, Y, p, out)
        for lane in range(5):
            ref = np.empty(n)
            ps.module.rhs(0.1, Y[lane], p, ref)
            assert _rel_diff(out[lane], ref) < RTOL


class TestAnalysisEquivalence:
    def test_scc_structure_refines_scalar_sccs(self):
        """Every scalar SCC lands inside exactly one array SCC."""
        params = BearingParams(num_rollers=8)
        aflat = flatten_model(build_bearing2d(params), mode="array")
        sflat = flatten_model(build_bearing2d(params), mode="scalar")
        a_var, _aeq, _asgn, info = build_array_dependency_graph(aflat)
        s_var, _seq, _ssgn = build_dependency_graph(sflat)

        vertex_of_scalar = dict(info.name_map)
        array_scc_of = {}
        for i, comp in enumerate(strongly_connected_components(a_var)):
            for v in comp:
                array_scc_of[v] = i
        for comp in strongly_connected_components(s_var):
            images = {
                array_scc_of[vertex_of_scalar.get(v, v)] for v in comp
            }
            assert len(images) == 1, (
                f"scalar SCC {comp} split across array SCCs {images}"
            )

    def test_array_graph_size_independent_of_member_count(self):
        g10, *_ = build_array_dependency_graph(
            flatten_model(
                build_bearing2d(BearingParams(num_rollers=10)), mode="array"
            )
        )
        g50, *_ = build_array_dependency_graph(
            flatten_model(
                build_bearing2d(BearingParams(num_rollers=50)), mode="array"
            )
        )
        assert g10.num_nodes == g50.num_nodes
        assert g10.num_edges == g50.num_edges


class TestScalarizePass:
    def test_jacobian_request_scalarizes(self):
        ca = compile_model(
            build_bearing2d(), backend="python", flatten_mode="array",
            jacobian=True,
        )
        assert ca.report.metrics.get("scalarized") is True
        assert "Jacobian" in ca.report.metrics["scalarize_reason"]
        cs = compile_model(
            build_bearing2d(), backend="python", flatten_mode="scalar",
            jacobian=True,
        )
        n = ca.program.num_states
        y = _perturbed_state(cs.program, seed=5)
        p = np.asarray(cs.program.param_vector(), dtype=float)
        ja, js = np.zeros((n, n)), np.zeros((n, n))
        ca.program.module.jac(0.2, y, p, ja)
        cs.program.module.jac(0.2, y, p, js)
        # the scalarize pass re-flattens the source model in scalar mode,
        # so the generated Jacobian is the scalar one, bit for bit
        assert np.array_equal(ja, js)

    def test_shared_cse_request_scalarizes(self):
        c = compile_model(
            build_bearing2d(), backend="python", flatten_mode="array",
            shared_cse=True,
        )
        assert c.report.metrics.get("scalarized") is True
        assert "shared-CSE" in c.report.metrics["scalarize_reason"]

    def test_pure_array_compile_does_not_scalarize(self):
        c = compile_model(
            build_bearing2d(), backend="python", flatten_mode="array"
        )
        assert c.report.metrics.get("scalarized") is None


class TestExplainMetrics:
    def test_report_carries_array_metrics(self):
        c = compile_model(
            build_bearing2d(BearingParams(num_rollers=12)),
            backend="python", flatten_mode="array",
        )
        m = c.report.to_obj()["metrics"]
        assert m["flatten_mode"] == "array"
        assert m["num_array_equations"] > 0
        assert m["slice_cardinalities"] == {"W": 12}
        assert m["scalarize_expansion_factor"] > 1.0
        text = "\n".join(c.report.summary_lines())
        assert "array equations" in text
        assert "W[12]" in text
        assert "scalarize expansion factor" in text


class TestReduceNode:
    def _sum(self, count=10):
        body = mul(Sym("W1.f"), Sym("k"))
        return Reduce(body, "W", 1, count)

    def test_cost_model_weights_by_count(self):
        cm = CostModel()
        node = self._sum(10)
        assert cm.expr_cost(node) == pytest.approx(
            10 * cm.expr_cost(node.body) + 9 * cm.add
        )

    def test_op_histogram_weights_by_count(self):
        node = self._sum(10)
        h = op_histogram(node)
        body_h = op_histogram(node.body)
        assert h.muls == 10 * body_h.muls
        assert h.adds == 9

    def test_serialize_roundtrip(self):
        node = add(self._sum(5), Sym("F0"))
        assert expr_from_obj(expr_to_obj(node)) == node

    def test_expansion_matches_canonical_sum(self):
        node = self._sum(3)
        expanded = expand_reduces(node)
        assert expanded == add(
            mul(Sym("W1.f"), Sym("k")),
            mul(Sym("W2.f"), Sym("k")),
            mul(Sym("W3.f"), Sym("k")),
        )

    def test_memberless_body_folds_to_multiple(self):
        node = Reduce(Sym("g"), "W", 1, 4)
        assert expand_reduces(node) == mul(4, Sym("g"))
