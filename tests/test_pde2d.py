"""Tests of the 2-D method-of-lines extension."""

import math

import numpy as np
import pytest

from repro.codegen import generate_program, make_ode_system
from repro.pde import Grid2D, PdeField2D, PdeProblem2D
from repro.solver import ColoredFiniteDifferenceJacobian, solve_ivp
from repro.symbolic import evaluate


class TestGrid2D:
    def test_geometry(self):
        grid = Grid2D(5, 9, 0.0, 1.0, 0.0, 2.0)
        assert grid.dx == pytest.approx(0.25)
        assert grid.dy == pytest.approx(0.25)
        assert grid.x(4) == pytest.approx(1.0)
        assert grid.y(8) == pytest.approx(2.0)

    def test_interior_count(self):
        grid = Grid2D(5, 4)
        assert len(list(grid.interior())) == 3 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(2, 5)
        with pytest.raises(ValueError):
            Grid2D(5, 5, 1.0, 0.0)
        with pytest.raises(IndexError):
            Grid2D(5, 5).x(9)


class TestStencils2D:
    def _flat(self, rhs_builder, boundary=lambda x, y: 0.0):
        grid = Grid2D(5, 5, 0.0, 1.0, 0.0, 1.0)
        prob = PdeProblem2D(grid)
        fld = PdeField2D("u", initial=lambda x, y: 0.0, boundary=boundary)
        prob.add(fld, lambda ctx: rhs_builder(ctx, fld))
        return grid, fld, prob.discretize()

    def test_laplacian_exact_for_quadratic(self):
        # u = x^2 + y^2 -> laplacian = 4 everywhere, boundary consistent.
        grid, fld, flat = self._flat(
            lambda ctx, f: ctx.laplacian(f),
            boundary=lambda x, y: x**2 + y**2,
        )
        env = {
            fld.node_name(i, j): grid.x(i) ** 2 + grid.y(j) ** 2
            for i in range(5)
            for j in range(5)
        }
        for eq in flat.odes:
            assert evaluate(eq.rhs, env) == pytest.approx(4.0)

    def test_gradients_exact_for_linear(self):
        grid, fld, flat = self._flat(
            lambda ctx, f: ctx.ddx(f) + 10 * ctx.ddy(f),
            boundary=lambda x, y: 2 * x + 3 * y,
        )
        env = {
            fld.node_name(i, j): 2 * grid.x(i) + 3 * grid.y(j)
            for i in range(5)
            for j in range(5)
        }
        for eq in flat.odes:
            assert evaluate(eq.rhs, env) == pytest.approx(2 + 30.0)

    def test_boundary_nodes_not_states(self):
        _grid, fld, flat = self._flat(lambda ctx, f: ctx.laplacian(f))
        assert fld.node_name(0, 2) not in flat.states
        assert fld.node_name(2, 2) in flat.states
        assert flat.num_states == 9

    def test_duplicate_field_rejected(self):
        prob = PdeProblem2D(Grid2D(5, 5))
        fld = PdeField2D("u", initial=lambda x, y: 0.0)
        prob.add(fld, lambda ctx: 0)
        with pytest.raises(ValueError):
            prob.add(PdeField2D("u", initial=lambda x, y: 0.0),
                     lambda ctx: 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PdeProblem2D(Grid2D(5, 5)).discretize()


class TestHeat2D:
    def test_matches_analytic(self):
        """u0 = sin(pi x) sin(pi y) decays as exp(-2 pi^2 a t)."""
        alpha = 0.05
        grid = Grid2D(17, 17)
        prob = PdeProblem2D(grid, name="heat2d")
        fld = PdeField2D(
            "u",
            initial=lambda x, y: math.sin(math.pi * x) * math.sin(math.pi * y),
        )
        prob.add(fld, lambda ctx: alpha * ctx.laplacian(fld))
        system = make_ode_system(prob.discretize())
        program = generate_program(system)
        f = program.make_rhs()
        jac = ColoredFiniteDifferenceJacobian(f, system)
        # 5-point stencil: a handful of colors instead of 225 columns.
        assert jac.num_colors <= 10
        r = solve_ivp(f, (0.0, 0.5), program.start_vector(), method="bdf",
                      rtol=1e-7, atol=1e-10, jac=jac)
        assert r.success
        mid = system.state_names.index("u[8,8]")
        exact = math.exp(-2 * math.pi**2 * alpha * 0.5)
        assert r.y_final[mid] == pytest.approx(exact, abs=2e-3)

    def test_maximum_principle(self):
        grid = Grid2D(9, 9)
        prob = PdeProblem2D(grid)
        fld = PdeField2D(
            "u", initial=lambda x, y: 1.0 if (x, y) == (0.5, 0.5) else 0.0
        )
        prob.add(fld, lambda ctx: 0.1 * ctx.laplacian(fld))
        system = make_ode_system(prob.discretize())
        program = generate_program(system)
        r = solve_ivp(program.make_rhs(), (0.0, 1.0),
                      program.start_vector(), method="bdf",
                      rtol=1e-7, atol=1e-10)
        assert r.success
        assert np.all(r.ys <= 1.0 + 1e-9)
        assert np.all(r.ys >= -1e-6)
