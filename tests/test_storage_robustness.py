"""Crash-consistent storage: checkpoint CRC/rotation/fallback, artifact
cache quarantine and advisory locking, storage fault injection, and the
bounded runtime event log."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.compiler import (
    ArtifactCache,
    CompileOptions,
    artifact_key,
    compile_context,
)
from repro.runtime import (
    Checkpoint,
    CheckpointError,
    Checkpointer,
    RuntimeEvents,
    StorageFaultInjector,
    StorageFaultSpec,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.checkpoint import rotated_paths
from repro.runtime.events import DEFAULT_MAXLEN

_SRC = """
MODEL storosc;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
END storosc;
"""


def make_ckpt(t=1.0):
    return Checkpoint(
        method="rk45", t=t, y=np.array([1.0, 2.0]), h=0.1, direction=1.0,
        order=5,
    )


class TestCheckpointCrc:
    def test_round_trip_carries_valid_crc(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(), path)
        payload = json.loads(path.read_text())
        assert isinstance(payload["crc"], int)
        ckpt = load_checkpoint(path)
        assert ckpt.t == 1.0

    def test_bit_flip_is_detected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(), path, keep=1)
        raw = bytearray(path.read_bytes())
        # flip one bit inside the numeric payload (not the crc field)
        pos = raw.find(b'"t": 1.0')
        if pos < 0:
            pos = len(raw) // 2
        raw[pos + 6] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, fallback=False)

    def test_torn_write_is_detected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(), path, keep=1)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path, fallback=False)

    def test_no_stale_tmp_after_save(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(), path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_serialization_removes_tmp(self, tmp_path):
        path = tmp_path / "c.ckpt"
        bad = make_ckpt()
        bad.meta = {"unserializable": object()}
        with pytest.raises(TypeError):
            save_checkpoint(bad, path)
        assert not list(tmp_path.glob("*.tmp"))
        assert not path.exists()


class TestCheckpointRotation:
    def test_generations_rotate_newest_first(self, tmp_path):
        path = tmp_path / "c.ckpt"
        for t in (1.0, 2.0, 3.0, 4.0):
            save_checkpoint(make_ckpt(t), path, keep=3)
        gens = rotated_paths(path, 3)
        assert [p.exists() for p in gens] == [True, True, True]
        assert load_checkpoint(gens[0], fallback=False).t == 4.0
        assert load_checkpoint(gens[1], fallback=False).t == 3.0
        assert load_checkpoint(gens[2], fallback=False).t == 2.0
        # keep=3 means generation .3 never appears
        assert not path.with_name(path.name + ".3").exists()

    def test_keep_one_disables_rotation(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(1.0), path, keep=1)
        save_checkpoint(make_ckpt(2.0), path, keep=1)
        assert load_checkpoint(path).t == 2.0
        assert not path.with_name(path.name + ".1").exists()

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        events = RuntimeEvents()
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(1.0), path, keep=3)
        save_checkpoint(make_ckpt(2.0), path, keep=3)
        path.write_text("garbage")
        ckpt = load_checkpoint(path, keep=3, events=events)
        assert ckpt.t == 1.0
        fb = events.of_kind("checkpoint_fallback")
        assert len(fb) == 1
        assert fb[0].data["generation"] == 1

    def test_all_generations_corrupt_raises_first_error(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(1.0), path, keep=2)
        save_checkpoint(make_ckpt(2.0), path, keep=2)
        for p in rotated_paths(path, 2):
            p.write_text("garbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path, keep=2)

    def test_checkpointer_threads_keep_through(self, tmp_path):
        path = tmp_path / "c.ckpt"
        cp = Checkpointer(path, every=1, keep=2)
        for t in (1.0, 2.0):
            cp.step(lambda t=t: make_ckpt(t))
        assert load_checkpoint(path.with_name(path.name + ".1"),
                               fallback=False).t == 1.0


class TestCheckpointStorageFaults:
    def test_injected_torn_write_recovers_via_rotation(self, tmp_path):
        events = RuntimeEvents()
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_ckpt(1.0), path, keep=3)
        faults = StorageFaultInjector(
            [StorageFaultSpec(op="checkpoint_save", kind="torn_write")],
            events=events,
        )
        save_checkpoint(make_ckpt(2.0), path, keep=3, faults=faults)
        assert events.count("fault_injected") == 1
        ckpt = load_checkpoint(path, keep=3, events=events)
        assert ckpt.t == 1.0  # torn latest fell back one generation
        assert events.count("checkpoint_fallback") == 1

    def test_injected_bit_flip_is_seeded_and_detected(self, tmp_path):
        path = tmp_path / "c.ckpt"

        def corrupted_bytes(seed):
            faults = StorageFaultInjector(
                [StorageFaultSpec(op="checkpoint_save", kind="bit_flip")],
                seed=seed,
            )
            save_checkpoint(make_ckpt(2.0), path, keep=1, faults=faults)
            return path.read_bytes()

        first = corrupted_bytes(7)
        second = corrupted_bytes(7)
        assert first == second  # same seed, same flipped bit
        with pytest.raises(CheckpointError):
            load_checkpoint(path, fallback=False)

    def test_slow_io_only_delays(self, tmp_path):
        path = tmp_path / "c.ckpt"
        faults = StorageFaultInjector(
            [StorageFaultSpec(op="checkpoint_save", kind="slow_io",
                              delay_seconds=0.0)],
        )
        save_checkpoint(make_ckpt(3.0), path, faults=faults)
        assert load_checkpoint(path).t == 3.0
        assert faults.fired == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            StorageFaultSpec(op="cache_store", kind="explode")
        with pytest.raises(ValueError, match="op"):
            StorageFaultSpec(op="nonsense", kind="slow_io")
        with pytest.raises(ValueError):
            StorageFaultSpec(op="*", kind="torn_write",
                             truncate_fraction=1.0)

    def test_burn_out_and_wildcard_op(self, tmp_path):
        faults = StorageFaultInjector(
            [StorageFaultSpec(op="*", kind="slow_io", count=2,
                              delay_seconds=0.0)],
        )
        path = tmp_path / "c.ckpt"
        for _ in range(4):
            save_checkpoint(make_ckpt(), path, faults=faults)
        assert faults.fired == 2
        assert faults.remaining() == 0


def compile_into(cache, source=_SRC):
    ctx = compile_context(
        source=source, options=CompileOptions(cache=cache)
    )
    return ctx


class TestCacheCrashConsistency:
    def test_store_leaves_no_tmp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        compile_into(cache)
        files = list((tmp_path / "cache").glob("*"))
        assert any(p.suffix == ".json" for p in files)
        assert not any(p.name.endswith(".tmp") for p in files)

    def test_corrupt_artifact_is_quarantined_not_silently_missed(
        self, tmp_path
    ):
        events = RuntimeEvents()
        root = tmp_path / "cache"
        cache = ArtifactCache(root, events=events)
        ctx = compile_into(cache)
        artifact = root / f"{ctx.cache_key}.json"
        artifact.write_text("{not json")
        cache.drop_memory()  # simulate a fresh process
        assert cache.load(ctx.cache_key) is None
        assert cache.quarantined == 1
        assert not artifact.exists()
        assert len(list((root / "quarantine").glob("*.json"))) == 1
        assert events.count("cache_quarantined") == 1
        # the quarantined slot is clean: a recompile repopulates it
        again = compile_into(cache)
        cache.drop_memory()
        assert cache.load(again.cache_key) is not None

    def test_quarantined_bytes_are_preserved_for_post_mortem(self,
                                                             tmp_path):
        root = tmp_path / "cache"
        cache = ArtifactCache(root)
        ctx = compile_into(cache)
        artifact = root / f"{ctx.cache_key}.json"
        artifact.write_text("evidence")
        cache.drop_memory()
        cache.load(ctx.cache_key)
        (entry,) = (root / "quarantine").glob("*.json")
        assert entry.read_text() == "evidence"

    def test_injected_torn_store_round_trips_to_quarantine(self, tmp_path):
        events = RuntimeEvents()
        faults = StorageFaultInjector(
            [StorageFaultSpec(op="cache_store", kind="torn_write")],
            events=events,
        )
        root = tmp_path / "cache"
        cache = ArtifactCache(root, events=events, faults=faults)
        ctx = compile_into(cache)  # store is torn on disk
        cache.drop_memory()
        assert cache.load(ctx.cache_key) is None  # quarantined
        assert cache.quarantined == 1

    def test_clear_removes_locks_and_quarantine(self, tmp_path):
        root = tmp_path / "cache"
        cache = ArtifactCache(root)
        ctx = compile_into(cache)
        (root / f"{ctx.cache_key}.json").write_text("junk")
        cache.drop_memory()
        cache.load(ctx.cache_key)
        cache.clear()
        assert not list(root.glob("*.json"))
        assert not list((root / "quarantine").glob("*"))
        assert not list((root / "locks").glob("*"))


@pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX-only flock")
class TestCacheLocking:
    def test_no_lock_files_leak_after_store(self, tmp_path):
        root = tmp_path / "cache"
        cache = ArtifactCache(root)
        compile_into(cache)
        assert not list((root / "locks").glob("*.lock"))

    def test_stale_lock_degrades_to_lockless_write(self, tmp_path):
        """A wedged lock holder must cost a bounded wait, not a hang: the
        writer times out, records the degradation, and still publishes."""
        events = RuntimeEvents()
        faults = StorageFaultInjector(
            [StorageFaultSpec(op="cache_store", kind="stale_lock",
                              hold_seconds=1.0)],
            events=events,
        )
        root = tmp_path / "cache"
        cache = ArtifactCache(root, events=events, faults=faults,
                              lock_timeout=0.1)
        ctx = compile_into(cache)
        faults.drain()
        assert cache.lock_timeouts == 1
        assert events.count("cache_lock_timeout") == 1
        cache.drop_memory()
        assert cache.load(ctx.cache_key) is not None  # write still landed

    def test_briefly_held_lock_is_waited_out(self, tmp_path):
        events = RuntimeEvents()
        faults = StorageFaultInjector(
            [StorageFaultSpec(op="cache_store", kind="stale_lock",
                              hold_seconds=0.05)],
            events=events,
        )
        root = tmp_path / "cache"
        cache = ArtifactCache(root, events=events, faults=faults,
                              lock_timeout=5.0)
        ctx = compile_into(cache)
        faults.drain()
        assert cache.lock_timeouts == 0
        cache.drop_memory()
        assert cache.load(ctx.cache_key) is not None


class TestEventRingBuffer:
    def test_bounded_log_drops_oldest_and_counts(self):
        events = RuntimeEvents(maxlen=4)
        for i in range(10):
            events.record("tick", i=i)
        assert len(events) == 4
        assert events.dropped_events == 6
        assert events.total_recorded == 10
        retained = [e.data["i"] for e in events]
        assert retained == [6, 7, 8, 9]
        # sequence numbers survive eviction
        assert [e.seq for e in events] == [6, 7, 8, 9]
        assert "(+6 dropped)" in events.summary()

    def test_unbounded_when_maxlen_none(self):
        events = RuntimeEvents(maxlen=None)
        for i in range(100):
            events.record("tick", i=i)
        assert len(events) == 100
        assert events.dropped_events == 0

    def test_default_capacity_is_generous(self):
        assert RuntimeEvents().maxlen == DEFAULT_MAXLEN

    def test_clear_resets_drop_count(self):
        events = RuntimeEvents(maxlen=2)
        for _ in range(5):
            events.record("tick")
        events.clear()
        assert events.dropped_events == 0
        assert len(events) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RuntimeEvents(maxlen=0)

    def test_dump_jsonl_header_and_payload(self, tmp_path):
        events = RuntimeEvents(maxlen=3)
        for i in range(5):
            events.record("tick", i=i, arr=np.array([1.0]))
        out = events.dump_jsonl(tmp_path / "events.jsonl")
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["header"] == "repro-runtime-events"
        assert header["retained"] == 3
        assert header["total_recorded"] == 5
        assert header["dropped_events"] == 2
        body = [json.loads(line) for line in lines[1:]]
        assert [e["data"]["i"] for e in body] == [2, 3, 4]
        # non-JSON payload values are coerced, not fatal
        assert isinstance(body[0]["data"]["arr"], str)
