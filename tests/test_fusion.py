"""Task fusion + K-stage round tests.

Three layers:

* the ``fuse_tasks`` compiler pass — merge counts, dependency-order
  safety, determinism, the ``--no-fuse`` escape hatch, the ``--explain``
  metrics, and the cache-fingerprint coverage of the fusion options,
* the bit-identity matrix — serial/thread/process executors x
  fused/unfused programs x stage chunks K in {1, 2, full}: every
  combination must reproduce the plain per-stage serial solve *bit for
  bit* on all four example apps,
* the fault matrix under fusion — kill/hang/raise/nan mid-fused-task
  during an optimistic K-stage round must recover through the hardened
  ladder, still bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    Bearing3dParams,
    BearingParams,
    build_bearing2d,
    build_bearing3d,
    build_powerplant,
    build_servo,
)
from repro.codegen.fuse import FusionStats
from repro.compiler import CompileOptions
from repro.frontend import compile_model
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    ParallelRHS,
    ProcessExecutor,
    RuntimeEvents,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.runtime.supervisor import dependency_levels
from repro.schedule.semidynamic import SemiDynamicScheduler
from repro.solver.common import SolverOptions
from repro.solver.rk import rk45_adaptive


class _PlainRHS(ParallelRHS):
    """ParallelRHS without the K-stage fast path: the solver falls back
    to one ``__call__`` per stage — the bit-identity reference."""

    eval_stages = None


def _solve(rhs, program, tspan):
    return rk45_adaptive(rhs, tspan, program.start_vector(),
                         SolverOptions(max_steps=30))


# -- the fuse_tasks pass ----------------------------------------------------


class TestFusePass:
    def test_small_tasks_merge_on_the_paper_bearing(self, bearing_model):
        fused = compile_model(bearing_model)
        unfused = compile_model(bearing_model, fuse=False)
        assert unfused.program.num_tasks > fused.program.num_tasks
        m = fused.report.metrics
        assert m["fuse_tasks_before"] == unfused.program.num_tasks
        assert m["fuse_tasks_after"] == fused.program.num_tasks
        assert m["fuse_threshold"] > 0

    def test_fused_plan_keeps_dependency_order(self, bearing_model):
        program = compile_model(bearing_model).program
        levels = dependency_levels(program.task_graph)
        seen: set[int] = set()
        for level in levels:
            for tid in level:
                deps = program.task_graph[tid].depends_on
                assert set(deps) <= seen
            seen.update(level)

    def test_fusion_is_deterministic(self, bearing_model):
        a = compile_model(bearing_model).program
        b = compile_model(bearing_model).program
        assert a.module.source == b.module.source
        assert [t.weight for t in a.task_graph.tasks] == [
            t.weight for t in b.task_graph.tasks
        ]

    def test_no_fuse_escape_hatch_reports_skip(self, bearing_model):
        report = compile_model(bearing_model, fuse=False).report
        assert "fuse_tasks" in report.skipped_passes
        assert "fuse_tasks_before" not in report.metrics

    def test_explain_renders_fusion_lines(self, bearing_model):
        text = str(compile_model(bearing_model).report)
        assert "fuse_tasks" in text
        assert "fuse tasks:" in text
        assert "fused cost histogram:" in text

    def test_threshold_override_caps_merging(self, bearing_model):
        # A near-zero threshold makes every task "big enough" already.
        cm = compile_model(bearing_model, fuse_threshold=1e-30)
        assert (cm.report.metrics["fuse_tasks_after"]
                == cm.report.metrics["fuse_tasks_before"])

    def test_fingerprint_covers_fusion_options(self):
        base = CompileOptions().codegen_fingerprint()
        assert CompileOptions(fuse=False).codegen_fingerprint() != base
        assert (CompileOptions(fuse_threshold=1e-3).codegen_fingerprint()
                != base)
        assert (CompileOptions(stage_chunk=3).codegen_fingerprint()
                != base)

    def test_fusion_stats_histogram_bands(self):
        stats = FusionStats(tasks_before=10, tasks_after=4, threshold=1.0,
                            fused_costs=(0.1, 0.3, 0.9, 1.5))
        assert stats.merged
        hist = dict(stats.cost_histogram())
        assert hist["<0.25t"] == 1
        assert hist["0.25-0.5t"] == 1
        assert hist["0.5-1t"] == 1
        assert hist["1-2t"] == 1
        assert sum(hist.values()) == 4


# -- the bit-identity matrix ------------------------------------------------


MATRIX_MODELS = {
    "servo": build_servo,
    "powerplant": build_powerplant,
    "bearing2d": lambda: build_bearing2d(BearingParams(num_rollers=10)),
    "bearing3d": lambda: build_bearing3d(
        Bearing3dParams(num_rollers=4, contact_harmonics=4)
    ),
}
MATRIX_SPANS = {
    "servo": (0.0, 0.05),
    "powerplant": (0.0, 0.05),
    "bearing2d": (0.0, 1e-4),
    "bearing3d": (0.0, 1e-4),
}


@pytest.mark.parametrize("name", sorted(MATRIX_MODELS))
class TestBitIdentityMatrix:
    def _matrix(self, name, make_executor, chunks):
        """Solve under every (fusion, K) combination and compare against
        the plain per-stage serial reference of the same program."""
        tspan = MATRIX_SPANS[name]
        model = MATRIX_MODELS[name]()
        for fused in (True, False):
            program = compile_model(model, fuse=fused).program
            ref = _solve(_PlainRHS(program), program, tspan)
            assert ref.success
            executor = make_executor(program)
            try:
                for chunk in chunks:
                    rhs = ParallelRHS(program, executor, stage_chunk=chunk)
                    result = _solve(rhs, program, tspan)
                    label = (name, fused, type(executor).__name__, chunk)
                    assert result.success, label
                    assert np.array_equal(result.ts, ref.ts), label
                    assert np.array_equal(result.ys, ref.ys), label
            finally:
                executor.close()

    def test_serial_stage_path(self, name):
        self._matrix(name, lambda p: SerialExecutor(p), (1, 2, 6))

    def test_threaded_stage_rounds(self, name):
        self._matrix(
            name, lambda p: ThreadedExecutor(p, num_workers=2), (1, 2, 6)
        )

    def test_process_stage_rounds(self, name):
        self._matrix(
            name, lambda p: ProcessExecutor(p, num_workers=2), (1, 2, 6)
        )


# -- the fault matrix under fusion ------------------------------------------


@pytest.fixture(scope="module")
def fused_bearing():
    """The paper's 10-roller bearing, fused (38 -> 8 tasks): every task
    is a real multi-member fused task, so a fault lands mid-fusion."""
    return compile_model(build_bearing2d(BearingParams(num_rollers=10)))


@pytest.mark.parametrize("mode,extra,level_timeout", [
    ("raise", {}, 1.0),
    ("kill", {}, 1.0),
    # The hang must outlive the barrier deadline, or it is just a slow
    # task and the optimistic round completes normally.
    ("hang", {"hang_seconds": 1.5}, 0.5),
    ("nan", {}, 1.0),
])
@pytest.mark.parametrize("executor_cls", [ThreadedExecutor, ProcessExecutor])
def test_fault_mid_fused_stage_round_recovers_bit_identical(
    fused_bearing, executor_cls, mode, extra, level_timeout
):
    program = fused_bearing.program
    tspan = (0.0, 1e-4)
    ref = _solve(_PlainRHS(program), program, tspan)

    events = RuntimeEvents()
    injector = FaultInjector(
        [FaultSpec(task_id=2, mode=mode, round_index=3, count=1, **extra)],
        events=events,
    )
    executor = executor_cls(program, num_workers=2, injector=injector,
                            events=events, level_timeout=level_timeout)
    rhs = ParallelRHS(program, executor, stage_chunk=6)
    try:
        result = _solve(rhs, program, tspan)
    finally:
        rhs.close()
    assert result.success
    assert np.array_equal(result.ts, ref.ts)
    assert np.array_equal(result.ys, ref.ys)
    # The optimistic round aborted and the chunk re-ran supervised.
    assert events.count("stage_round_aborted") >= 1


# -- the K auto-tuner -------------------------------------------------------


class TestAutoTuner:
    def test_uncalibrated_scheduler_recommends_k1(self, compiled_servo):
        s = SemiDynamicScheduler(compiled_servo.program.task_graph, 4)
        assert s.recommend_stage_chunk() == 1

    def test_expensive_dispatch_recommends_full_chunk(self, compiled_servo):
        s = SemiDynamicScheduler(compiled_servo.program.task_graph, 4)
        s.calibrate_dispatch(10.0)  # absurdly slow dispatch
        assert s.recommend_stage_chunk(max_stages=6) == 6

    def test_dispatch_calibration_validates(self, compiled_servo):
        s = SemiDynamicScheduler(compiled_servo.program.task_graph, 2)
        with pytest.raises(ValueError):
            s.calibrate_dispatch(-1.0)

    def test_fusion_threshold_recommendation_positive(self, compiled_servo):
        s = SemiDynamicScheduler(compiled_servo.program.task_graph, 2)
        s.calibrate_dispatch(1e-3)
        assert s.recommend_fusion_threshold() > 0

    def test_serial_dispatch_is_free(self, compiled_servo):
        assert SerialExecutor(
            compiled_servo.program
        ).measure_dispatch_overhead() == 0.0

    def test_threaded_dispatch_is_measurable(self, compiled_servo):
        with ThreadedExecutor(compiled_servo.program, 2) as executor:
            overhead = executor.measure_dispatch_overhead(trials=3)
        assert overhead > 0.0

    def test_auto_chunk_on_serial_resolves_to_one(self, compiled_servo):
        rhs = ParallelRHS(compiled_servo.program, stage_chunk="auto")
        assert rhs._resolve_stage_chunk(6) == 1

    def test_stage_chunk_validation(self, compiled_servo):
        with pytest.raises(ValueError):
            ParallelRHS(compiled_servo.program, stage_chunk=0)
        with pytest.raises(ValueError):
            ParallelRHS(compiled_servo.program, stage_chunk="sometimes")

    def test_stage_times_fed_per_round(self, compiled_servo):
        """A K-stage chunk accumulates K rounds of task times; the
        scheduler feed must divide them back to per-round scale."""
        program = compiled_servo.program
        scheduler = SemiDynamicScheduler(program.task_graph, 2,
                                         reschedule_every=1)
        with ThreadedExecutor(program, 2) as executor:
            rhs = ParallelRHS(program, executor, scheduler=scheduler,
                              feed_measurements=True, stage_chunk=6)
            from repro.solver.rk import DOPRI_A, DOPRI_C

            y = program.start_vector()
            k = np.empty((7, y.size))
            k[0] = rhs(0.0, y)
            rhs.eval_stages(0.0, y, 1e-8, k, DOPRI_A, DOPRI_C)
            assert executor.last_times_rounds == 6
            assert np.all(np.isfinite(scheduler.estimates))
            assert np.all(scheduler.estimates >= 0)
