"""Seeded chaos soak over the job supervision layer.

Runs ``REPRO_CHAOS_JOBS`` supervised jobs (default 12 for tier-1 speed;
CI's chaos-smoke job raises it to 50) through one shared
:class:`JobManager` under a randomized-but-seeded fault plan spanning
every layer this PR hardens:

* transient task faults (raise / NaN / Inf) on serial, thread, and
  process executors,
* worker kills on the pooled executors,
* mid-run crashes that force checkpoint-resume retries,
* torn checkpoint writes recovered through generation rotation,
* corrupted on-disk cache artifacts recovered through quarantine,
* permanent failures and sub-microsecond deadlines.

The contract under all of that: every job reaches a terminal state (no
hangs — each carries a generous wall-clock deadline as a backstop), every
*completed* job is bit-identical to the fault-free reference for its
method, every *failed* job carries a structured :class:`JobFailure` of the
expected kind with its retries in the event log, and nothing leaks —
no ``/dev/shm`` segments, no advisory lock files, no temp files.

Set ``REPRO_CHAOS_SEED`` to replay a specific plan and
``REPRO_CHAOS_LOG`` to dump the full event log as JSONL (the CI
post-mortem artifact).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.compiler import ArtifactCache, CompileOptions, compile_context
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    JobManager,
    JobRetryPolicy,
    JobSpec,
    RuntimeEvents,
    StorageFaultInjector,
    StorageFaultSpec,
)
from repro.solver import RecoveryPolicy, solve_ivp

JOBS = int(os.environ.get("REPRO_CHAOS_JOBS", "12"))
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

T_SPAN = (0.0, 1.5)
#: whole-job wall-clock backstop: generous enough never to fire on a
#: healthy run, tight enough that a hang fails the suite instead of CI
BACKSTOP = 120.0
#: resume must retrace bit-identically for these methods (BDF rebuilds
#: its Jacobian/LU after restart, see docs/fault_tolerance.md)
METHODS = ("rk45", "adams", "lsoda")

SCENARIOS = (
    ("clean", 0.22),
    ("task_transient", 0.20),
    ("kill", 0.12),
    ("midrun_resume", 0.14),
    ("ckpt_torn", 0.10),
    ("cache_corrupt", 0.08),
    ("solver_nan", 0.06),
    ("always_fail", 0.05),
    ("deadline_tiny", 0.03),
)
EXECUTORS = (("serial", 0.50), ("thread", 0.35), ("process", 0.15))

_SRC = """
MODEL chaososc;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
END chaososc;
"""

#: failure kinds each scenario is allowed to terminate with (a scenario
#: whose scripted fault never fires — e.g. a round index past the end of
#: the integration — legitimately completes instead)
EXPECTED_FAILURE_KINDS = {
    "always_fail": {"runtime"},
    "deadline_tiny": {"deadline"},
    "solver_nan": {"solver"},
}


def _weighted(rng, table):
    names, weights = zip(*table)
    return names[int(rng.choice(len(names), p=np.array(weights) /
                                sum(weights)))]


def _shm_segments():
    shm = Path("/dev/shm")
    if not shm.exists():
        return set()
    return {p.name for p in shm.glob("repro_px_*")}


def _build_spec(rng, scenario, program, model_hash, cache_ctx):
    method = METHODS[int(rng.choice(len(METHODS)))]
    executor = _weighted(rng, EXECUTORS)
    seed = int(rng.integers(2**31))
    base = dict(
        name=f"chaos-{scenario}",
        program=program, model_hash=model_hash,
        t_span=T_SPAN, method=method,
        executor=executor, workers=2,
        deadline=BACKSTOP,
        retry=JobRetryPolicy(max_retries=2, backoff=0.01,
                             backoff_factor=2.0, jitter=0.25),
        checkpoint_every=10, checkpoint_keep=3,
        seed=seed,
    )
    if scenario == "clean":
        pass
    elif scenario == "task_transient":
        mode = ("raise", "nan", "inf")[int(rng.choice(3))]
        plan = [
            FaultSpec(task_id=0, mode=mode,
                      round_index=int(rng.integers(5, 300)))
            for _ in range(int(rng.integers(1, 4)))
        ]
        base["fault_injector"] = FaultInjector(plan, seed=seed)
        if executor == "serial" and mode in ("nan", "inf"):
            # serial has no executor-level output validation: the solver
            # recovery layer absorbs the transient non-finite round by
            # shrinking the step — that legitimately changes the step
            # sequence, so this variant is tolerance-checked, not exact
            base["recovery"] = RecoveryPolicy(max_retries=5)
            base["tolerant"] = True
    elif scenario == "kill":
        base["executor"] = "thread" if executor == "serial" else executor
        # pinned to worker 0 (matching the executor fault-test idiom):
        # inline and reassigned executions must not re-fire the kill,
        # which would be unrecoverable by construction
        base["fault_injector"] = FaultInjector(
            [FaultSpec(task_id=0, mode="kill", worker=0,
                       round_index=int(rng.integers(5, 200)))],
            seed=seed,
        )
        # bound dead-worker detection so a kill costs seconds, not the
        # default round timeout
        base["executor_options"] = {"level_timeout": 5.0}
    elif scenario == "midrun_resume":
        base["executor"] = "serial"
        base["fault_injector"] = FaultInjector(
            [FaultSpec(task_id=0, mode="raise",
                       round_index=int(rng.integers(100, 400)))],
            seed=seed,
        )
    elif scenario == "ckpt_torn":
        base["executor"] = "serial"
        base["fault_injector"] = FaultInjector(
            [FaultSpec(task_id=0, mode="raise",
                       round_index=int(rng.integers(150, 400)))],
            seed=seed,
        )
        base["storage_faults"] = StorageFaultInjector(
            [StorageFaultSpec(op="checkpoint_save", kind="torn_write",
                              count=1)],
            seed=seed,
        )
    elif scenario == "cache_corrupt":
        base.pop("program")
        base["model_hash"] = None
        base["source"] = _SRC
        base["corrupt_cache"] = True
    elif scenario == "solver_nan":
        base["executor"] = "serial"
        base["fault_injector"] = FaultInjector(
            [FaultSpec(task_id=0, mode="nan", count=-1)], seed=seed,
        )
        base["recovery"] = RecoveryPolicy(max_retries=3)
    elif scenario == "always_fail":
        base["fault_injector"] = FaultInjector(
            [FaultSpec(task_id=0, mode="raise", count=-1)], seed=seed,
        )
    elif scenario == "deadline_tiny":
        base["deadline"] = 1e-6
    return base


@pytest.mark.slow
def test_chaos_soak(compiled_servo, tmp_path):
    rng = np.random.default_rng(SEED)
    events = RuntimeEvents()
    shm_before = _shm_segments()

    cache_root = tmp_path / "cache"
    cache = ArtifactCache(cache_root, events=events)
    # Pre-compile the source model once so cache_corrupt scenarios have an
    # artifact to corrupt.
    src_ctx = compile_context(source=_SRC,
                              options=CompileOptions(cache=cache))

    program = compiled_servo.program
    model_hash = compiled_servo.model_hash

    # Fault-free references, one per method (executors are bit-identical
    # across tiers, so serial references cover thread/process jobs too).
    refs = {
        method: solve_ivp(
            program.make_rhs(program.param_vector()), T_SPAN,
            program.start_vector(), method=method, rtol=1e-6, atol=1e-9,
        )
        for method in METHODS
    }
    src_rhs = src_ctx.program.make_rhs(src_ctx.program.param_vector())
    src_refs = {
        method: solve_ivp(
            src_rhs, T_SPAN, src_ctx.program.start_vector(),
            method=method, rtol=1e-6, atol=1e-9,
        )
        for method in METHODS
    }

    outcomes = {"completed": 0, "failed": 0}
    per_scenario: dict[str, int] = {}
    with JobManager(events=events, cache=cache,
                    workdir=tmp_path / "jobs") as manager:
        for _ in range(JOBS):
            scenario = _weighted(rng, SCENARIOS)
            per_scenario[scenario] = per_scenario.get(scenario, 0) + 1
            base = _build_spec(rng, scenario, program, model_hash, src_ctx)
            corrupt_cache = base.pop("corrupt_cache", False)
            storage_faults = base.pop("storage_faults", None)
            tolerant = base.pop("tolerant", False)
            if corrupt_cache:
                artifact = cache_root / f"{src_ctx.cache_key}.json"
                if artifact.exists():
                    artifact.write_bytes(b"\x00chaos" * 64)
                cache.drop_memory()
            manager.storage_faults = storage_faults
            try:
                job = manager.submit(JobSpec(**base))
            finally:
                manager.storage_faults = None
                if storage_faults is not None:
                    storage_faults.drain()

            # -- per-job contract --------------------------------------
            assert job.state in ("completed", "failed"), job.state
            outcomes[job.state] += 1
            if job.state == "completed":
                ref = (src_refs if base.get("source") else refs)[
                    base["method"]
                ]
                if tolerant:
                    np.testing.assert_allclose(
                        job.result.ys[-1], ref.ys[-1],
                        rtol=1e-4, atol=1e-7,
                        err_msg=f"{scenario} job {job.job_id} diverged",
                    )
                else:
                    np.testing.assert_array_equal(
                        job.result.ys[-1], ref.ys[-1],
                        err_msg=f"{scenario} job {job.job_id} diverged",
                    )
            else:
                failure = job.failure
                assert failure is not None
                expected = EXPECTED_FAILURE_KINDS.get(scenario)
                assert expected is not None, (
                    f"{scenario} job {job.job_id} failed unexpectedly: "
                    f"{failure}"
                )
                assert failure.kind in expected, failure
                assert failure.attempts == len(job.attempts)
                if failure.kind != "deadline":
                    # bounded retries, each one in the event log
                    assert failure.attempts <= base["retry"].max_retries + 1

        workdir = manager.workdir

    # -- global contract -----------------------------------------------
    assert outcomes["completed"] + outcomes["failed"] == JOBS
    forced_failures = sum(per_scenario.get(s, 0)
                          for s in EXPECTED_FAILURE_KINDS)
    assert outcomes["failed"] <= forced_failures

    # every retry decision is observable
    retries = events.count("job_retry")
    retried_attempts = sum(
        max(0, len(j.attempts) - 1) for j in manager.jobs
    )
    assert retries == retried_attempts

    # no leaks: shared-memory segments, advisory locks, temp files
    assert _shm_segments() <= shm_before
    assert not list(cache_root.rglob("*.lock"))
    assert not list(cache_root.rglob("*.tmp"))
    assert not workdir.exists() or not list(workdir.rglob("*.tmp"))

    log_path = os.environ.get("REPRO_CHAOS_LOG")
    if log_path:
        events.dump_jsonl(log_path)
