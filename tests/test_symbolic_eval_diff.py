"""Evaluation, substitution and differentiation tests."""

import math

import pytest

from repro.symbolic import (
    BoolOp,
    Const,
    Der,
    DiffError,
    EvalError,
    ITE,
    Rel,
    Sym,
    abs_,
    atan2,
    cos,
    diff,
    evaluate,
    exp,
    if_then_else,
    log,
    max_,
    min_,
    sign,
    sin,
    sqrt,
    substitute,
    symbols,
    tan,
    tanh,
)

x, y, z = symbols("x y z")


class TestEvaluate:
    def test_arithmetic(self):
        e = (x + 2) * y - x / 4
        assert evaluate(e, {"x": 4.0, "y": 3.0}) == pytest.approx(17.0)

    def test_functions(self):
        e = sin(x) ** 2 + cos(x) ** 2
        assert evaluate(e, {"x": 0.73}) == pytest.approx(1.0)

    def test_unbound_symbol(self):
        with pytest.raises(EvalError, match="unbound"):
            evaluate(x + y, {"x": 1.0})

    def test_relational(self):
        assert evaluate(Rel("<", x, y), {"x": 1, "y": 2}) == 1.0
        assert evaluate(Rel(">=", x, y), {"x": 1, "y": 2}) == 0.0

    def test_boolop(self):
        e = BoolOp("and", [Rel("<", x, y), Rel("<", y, z)])
        assert evaluate(e, {"x": 1, "y": 2, "z": 3}) == 1.0
        assert evaluate(e, {"x": 1, "y": 2, "z": 0}) == 0.0
        assert evaluate(BoolOp("not", [Rel("<", x, y)]),
                        {"x": 1, "y": 2}) == 0.0

    def test_ite_lazy(self):
        # The untaken branch must not be evaluated: log(-1) would raise.
        e = if_then_else(x.gt(0), log(x), Const(0))
        assert evaluate(e, {"x": -1.0}) == 0.0

    def test_domain_error(self):
        with pytest.raises(EvalError):
            evaluate(log(x), {"x": -1.0})

    def test_der_not_evaluable(self):
        with pytest.raises(EvalError):
            evaluate(Der(x), {"x": 1.0})

    def test_min_max_sign_abs(self):
        env = {"x": -3.0, "y": 2.0}
        assert evaluate(min_(x, y), env) == -3.0
        assert evaluate(max_(x, y), env) == 2.0
        assert evaluate(sign(x), env) == -1.0
        assert evaluate(sign(Const(0)), {}) == 0.0
        assert evaluate(abs_(x), env) == 3.0

    def test_atan2(self):
        assert evaluate(atan2(y, x), {"x": 1.0, "y": 1.0}) == pytest.approx(
            math.pi / 4
        )


class TestSubstitute:
    def test_symbol_replacement(self):
        e = substitute(x + y, {x: Const(3)})
        assert e == y + 3

    def test_subexpression_replacement(self):
        # Note: n-ary sums flatten, so `x + y` only exists as a node where
        # structure prevents flattening (inside the call and the product).
        e = substitute(sin(x + y) + 2 * (x + y), {x + y: z})
        assert e == sin(z) + 2 * z

    def test_no_fixpoint(self):
        # x -> x + 1 applies once, not repeatedly.
        e = substitute(x, {x: x + 1})
        assert e == x + 1

    def test_canonicalisation_after_substitution(self):
        e = substitute(x + y, {y: -x})
        assert e == Const(0)

    def test_identity_when_no_match(self):
        e = sin(x) * y
        assert substitute(e, {z: Const(1)}) == e


def _numeric_derivative(e, name, env, h=1e-7):
    lo = dict(env)
    hi = dict(env)
    lo[name] -= h
    hi[name] += h
    return (evaluate(e, hi) - evaluate(e, lo)) / (2 * h)


class TestDiff:
    @pytest.mark.parametrize(
        "expr",
        [
            x * y + y**3,
            sin(x * y),
            cos(x) * tan(y / 4),
            exp(x / 3) + log(y + 5),
            sqrt(x * x + 1),
            tanh(x - y),
            atan2(y, x + 3),
            x ** Const(2.5),
            (x + y) ** 3 / (y + 4),
        ],
    )
    def test_matches_finite_difference(self, expr):
        env = {"x": 0.8, "y": 1.7, "z": 0.3}
        for name in ("x", "y"):
            sym = Sym(name)
            analytic = evaluate(diff(expr, sym), env)
            numeric = _numeric_derivative(expr, name, env)
            assert analytic == pytest.approx(numeric, rel=1e-5, abs=1e-6)

    def test_constant_derivative(self):
        assert diff(Const(5), x) == Const(0)

    def test_self_derivative(self):
        assert diff(x, x) == Const(1)
        assert diff(y, x) == Const(0)

    def test_symbolic_exponent(self):
        e = diff(x**y, x)
        env = {"x": 2.0, "y": 3.0}
        assert evaluate(e, env) == pytest.approx(3 * 4.0)

    def test_ite_branches_differentiated(self):
        e = if_then_else(x.gt(0), x**2, -x)
        d = diff(e, x)
        assert evaluate(d, {"x": 2.0}) == pytest.approx(4.0)
        assert evaluate(d, {"x": -2.0}) == pytest.approx(-1.0)

    def test_relational_derivative_zero(self):
        assert diff(Rel("<", x, y), x) == Const(0)

    def test_min_max_derivative(self):
        d = diff(min_(x, y), x)
        assert evaluate(d, {"x": 1.0, "y": 2.0}) == 1.0
        assert evaluate(d, {"x": 3.0, "y": 2.0}) == 0.0

    def test_wrt_must_be_symbol(self):
        with pytest.raises(TypeError):
            diff(x, x + y)  # type: ignore[arg-type]

    def test_der_node_rejected(self):
        with pytest.raises(DiffError):
            diff(Der(x), x)
