"""Hypothesis strategies for random symbolic expressions.

The generated expressions are kept within the numerically tame subset
(bounded constants, guarded function domains) so that evaluation-based
equivalence checks rarely hit domain errors — and when they do, the tests
treat :class:`repro.symbolic.EvalError` on *both* sides as agreement.
"""

from __future__ import annotations

import math

from hypothesis import strategies as st

from repro.symbolic import (
    Const,
    Expr,
    ITE,
    Rel,
    Sym,
    add,
    cos,
    mul,
    pow_,
    sin,
    sqrt,
    tanh,
)

SYMBOL_NAMES = ("x", "y", "z")


def symbols_strategy() -> st.SearchStrategy:
    return st.sampled_from([Sym(n) for n in SYMBOL_NAMES])


def constants_strategy() -> st.SearchStrategy:
    return st.one_of(
        st.integers(min_value=-4, max_value=4).map(Const),
        st.floats(
            min_value=-4.0, max_value=4.0,
            allow_nan=False, allow_infinity=False,
        ).map(lambda v: Const(round(v, 3))),
    )


def expressions(max_depth: int = 4) -> st.SearchStrategy:
    """Random well-formed scalar expressions over x, y, z."""
    leaves = st.one_of(symbols_strategy(), constants_strategy())

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        pair = st.tuples(children, children)
        return st.one_of(
            pair.map(lambda ab: add(ab[0], ab[1])),
            pair.map(lambda ab: mul(ab[0], ab[1])),
            children.map(lambda a: add(a, Const(1))),
            children.map(lambda a: mul(a, Const(-1))),
            # Powers restricted to small non-negative integer exponents so
            # evaluation stays real and finite-ish.
            st.tuples(children, st.integers(0, 3)).map(
                lambda ae: pow_(ae[0], Const(ae[1]))
            ),
            children.map(sin),
            children.map(cos),
            children.map(tanh),
            children.map(lambda a: sqrt(mul(a, a))),  # sqrt of a square: safe
            st.tuples(children, children, children).map(
                lambda abc: ITE(Rel("<", abc[0], abc[1]), abc[1], abc[2])
            ),
        )

    return st.recursive(leaves, extend, max_leaves=2**max_depth)


def environments() -> st.SearchStrategy:
    """Random variable bindings for SYMBOL_NAMES."""
    value = st.floats(
        min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
    )
    return st.fixed_dictionaries({name: value for name in SYMBOL_NAMES})


def assert_equivalent(a: Expr, b: Expr, env: dict, rtol: float = 1e-9) -> None:
    """Assert two expressions evaluate equal (or both fail) at ``env``."""
    from repro.symbolic import EvalError, evaluate

    try:
        va = evaluate(a, env)
    except EvalError:
        va = None
    try:
        vb = evaluate(b, env)
    except EvalError:
        vb = None
    if va is None or vb is None:
        assert va is None and vb is None, (a, b, env, va, vb)
        return
    if math.isnan(va) or math.isnan(vb):
        assert math.isnan(va) and math.isnan(vb), (a, b, env)
        return
    scale = max(abs(va), abs(vb), 1.0)
    assert abs(va - vb) <= rtol * scale, (str(a), str(b), env, va, vb)
