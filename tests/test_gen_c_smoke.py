"""Compile-smoke for the C emitters: generated sources must stay valid C.

The textual back ends (``repro codegen -t c``) used to rot silently —
nothing ever compiled their output.  Every printed C source for all four
example apps (serial and parallel modes, with the analytic Jacobian) and
every native translation unit must now compile warning-free under
``cc -c -Wall -Werror``.  Skipped with a visible reason when the machine
has no C compiler.
"""

from __future__ import annotations

import subprocess

import pytest

from repro.apps.bearing2d import BearingParams, build_bearing2d
from repro.apps.bearing3d import Bearing3dParams, build_bearing3d
from repro.apps.powerplant import build_powerplant
from repro.apps.servo import build_servo
from repro.codegen import generate_c, generate_c_tasks, make_ode_system
from repro.codegen.native import find_compiler

HAS_CC = find_compiler() is not None
needs_cc = pytest.mark.skipif(not HAS_CC, reason="no C compiler on PATH")

_BUILDERS = {
    "servo": build_servo,
    "powerplant": build_powerplant,
    "bearing2d": lambda: build_bearing2d(BearingParams(num_rollers=4)),
    "bearing3d": lambda: build_bearing3d(
        Bearing3dParams(num_rollers=4, contact_harmonics=2)
    ),
}
APPS = tuple(_BUILDERS)


@pytest.fixture(scope="module")
def systems():
    cache: dict = {}

    def get(app: str):
        if app not in cache:
            cache[app] = make_ode_system(_BUILDERS[app]().flatten())
        return cache[app]

    return get


def _compile_smoke(source: str, tmp_path, tag: str) -> None:
    src = tmp_path / f"{tag}.c"
    obj = tmp_path / f"{tag}.o"
    src.write_text(source + "\n")
    cc = find_compiler()
    proc = subprocess.run(
        [*cc, "-c", "-Wall", "-Werror", "-o", str(obj), str(src)],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, (
        f"cc -c -Wall -Werror failed for {tag}:\n{proc.stderr}"
    )
    assert obj.exists()


@needs_cc
@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("mode", ["serial", "parallel"])
def test_textual_c_source_compiles(systems, tmp_path, app, mode):
    csrc = generate_c(systems(app), mode=mode, jacobian=True)
    _compile_smoke(csrc.source, tmp_path, f"{app}_{mode}")


@needs_cc
@pytest.mark.parametrize("app", APPS)
def test_native_translation_unit_compiles(systems, tmp_path, app):
    native = generate_c_tasks(systems(app), jacobian=True)
    _compile_smoke(native.source, tmp_path, f"{app}_native")


@needs_cc
def test_sign_helper_is_not_flagged_when_unused(tmp_path):
    """A model that never calls sign() still builds under -Werror."""
    system = make_ode_system(build_servo().flatten())
    csrc = generate_c(system, mode="serial")
    assert "sign" in csrc.source  # the helper is always emitted ...
    _compile_smoke(csrc.source, tmp_path, "servo_no_sign")  # ... unused
