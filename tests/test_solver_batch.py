"""Lockstep ensemble integration vs sequential solve_ivp.

The batched rk45 makes the same accept/reject decisions as the scalar
driver when run one-lane (identical tableau, identical error norm), so
single-lane agreement is essentially machine epsilon.  The batched Adams
uses a coarser step-control strategy (doubling with even-index history
gather instead of interpolating re-grids), so its trajectories are
compared against the *tolerance*, not bit-for-bit against the scalar
stepper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import compile_model
from repro.runtime import EnsembleRHS
from repro.solver import BatchResult, solve_ivp, solve_ivp_batch


@pytest.fixture(scope="module")
def servo_numpy(servo_model):
    return compile_model(servo_model, backend="numpy")


def _ic_batch(program, batch, seed=0, spread=0.05):
    rng = np.random.default_rng(seed)
    y0 = program.start_vector()
    return y0[None, :] * (1.0 + spread * rng.standard_normal((batch, y0.size)))


@pytest.mark.parametrize("method", ["rk45", "adams"])
def test_batch_matches_sequential(servo_numpy, method):
    program = servo_numpy.program
    Y0 = _ic_batch(program, 8)
    f_batch = program.make_rhs_batch()
    f_seq = program.make_rhs()
    result = solve_ivp_batch(
        f_batch, (0.0, 0.05), Y0, method=method, rtol=1e-8, atol=1e-10
    )
    assert isinstance(result, BatchResult)
    assert len(result) == 8 and result.all_success
    for i, lane in enumerate(result):
        ref = solve_ivp(
            f_seq, (0.0, 0.05), Y0[i], method=method, rtol=1e-8, atol=1e-10
        )
        assert ref.success
        diff = np.max(
            np.abs(lane.y_final - ref.y_final) / (1.0 + np.abs(ref.y_final))
        )
        # rk45 tracks the scalar driver's decisions exactly; adams only
        # promises both land within tolerance of the true solution.
        assert diff < (1e-12 if method == "rk45" else 1e-5)


def test_lanes_step_independently(servo_numpy):
    """A lane driven 10× harder (per-trajectory parameters) must not drag
    the tame lane onto its step sizes: per-lane step counts differ."""
    program = servo_numpy.program
    y0 = program.start_vector()
    P = np.tile(program.param_vector(), (2, 1))
    P[1, :] *= 10.0
    result = solve_ivp_batch(
        program.make_rhs_batch(P), (0.0, 0.05), np.stack([y0, y0]),
        method="rk45", rtol=1e-8, atol=1e-10,
    )
    assert result.all_success
    a, b = (lane.stats.naccepted for lane in result)
    assert a != b  # error control decided per trajectory


def test_batch_results_carry_per_lane_stats(servo_numpy):
    program = servo_numpy.program
    Y0 = _ic_batch(program, 4)
    result = solve_ivp_batch(
        program.make_rhs_batch(), (0.0, 0.02), Y0, method="rk45"
    )
    for lane in result:
        assert lane.stats.naccepted == len(lane.ts) - 1
        assert lane.method == "rk45"
        assert lane.ts[0] == 0.0 and lane.ts[-1] == pytest.approx(0.02)
    assert result.ys_final.shape == Y0.shape
    assert result.nsweeps > 0
    assert "rk45" in repr(result)


def test_backward_integration(servo_numpy):
    program = servo_numpy.program
    Y0 = _ic_batch(program, 3)
    fwd = solve_ivp_batch(
        program.make_rhs_batch(), (0.0, 0.02), Y0, rtol=1e-10, atol=1e-12
    )
    back = solve_ivp_batch(
        program.make_rhs_batch(), (0.02, 0.0), fwd.ys_final,
        rtol=1e-10, atol=1e-12,
    )
    assert back.all_success
    assert np.max(np.abs(back.ys_final - Y0)) < 1e-6


def test_max_steps_fails_lane_not_batch(servo_numpy):
    program = servo_numpy.program
    Y0 = _ic_batch(program, 2)
    result = solve_ivp_batch(
        program.make_rhs_batch(), (0.0, 0.05), Y0, max_steps=3
    )
    assert not result.all_success
    for lane in result:
        assert "maximum step count" in lane.message


def test_input_validation(servo_numpy):
    program = servo_numpy.program
    f = program.make_rhs_batch()
    with pytest.raises(ValueError, match="unknown batch method"):
        solve_ivp_batch(f, (0.0, 1.0), _ic_batch(program, 2), method="bdf")
    with pytest.raises(ValueError, match="shape"):
        solve_ivp_batch(f, (0.0, 1.0), program.start_vector())


# -- the ensemble facade -----------------------------------------------------


def test_ensemble_rhs_reused_buffer_matches(servo_numpy):
    program = servo_numpy.program
    Y0 = _ic_batch(program, 8, seed=1)
    ens = EnsembleRHS(program)  # reuse_output=True
    result = ens.solve((0.0, 0.05), Y0, method="rk45", rtol=1e-8, atol=1e-10)
    assert result.all_success
    assert ens.ncalls == result.nsweeps
    f_seq = program.make_rhs()
    for i, lane in enumerate(result):
        ref = solve_ivp(
            f_seq, (0.0, 0.05), Y0[i], method="rk45", rtol=1e-8, atol=1e-10
        )
        diff = np.max(
            np.abs(lane.y_final - ref.y_final) / (1.0 + np.abs(ref.y_final))
        )
        assert diff < 1e-12


def test_ensemble_rhs_output_modes(servo_numpy):
    program = servo_numpy.program
    Y = _ic_batch(program, 4)
    reusing = EnsembleRHS(program)
    a = reusing(0.0, Y)
    b = reusing(0.1, Y)
    assert a is b  # same preallocated buffer
    fresh = EnsembleRHS(program, reuse_output=False)
    c = fresh(0.0, Y)
    d = fresh(0.1, Y)
    assert c is not d
    np.testing.assert_array_equal(reusing(0.0, Y), fresh(0.0, Y))


def test_ensemble_rhs_per_trajectory_params(servo_numpy):
    program = servo_numpy.program
    B = 6
    Y0 = _ic_batch(program, B, seed=2)
    P = np.tile(program.param_vector(), (B, 1))
    P[:, 0] *= np.linspace(0.5, 1.5, B)
    ens = EnsembleRHS(program, params=P)
    result = ens.solve((0.0, 0.02), Y0, method="rk45", rtol=1e-8, atol=1e-10)
    assert result.all_success
    f0 = program.make_rhs(P[0])
    ref = solve_ivp(f0, (0.0, 0.02), Y0[0], method="rk45",
                    rtol=1e-8, atol=1e-10)
    diff = np.max(np.abs(result[0].y_final - ref.y_final)
                  / (1.0 + np.abs(ref.y_final)))
    assert diff < 1e-12
    # Lanes with different gains genuinely diverge.
    assert np.max(np.abs(result.ys_final[0] - result.ys_final[-1])) > 1e-6


def test_ensemble_rhs_validation(servo_numpy, compiled_servo):
    program = servo_numpy.program
    with pytest.raises(ValueError, match="backend='python'"):
        EnsembleRHS(compiled_servo.program)
    with pytest.raises(ValueError, match="params"):
        EnsembleRHS(program, params=np.zeros((2, 2, 2)))
    P = np.tile(program.param_vector(), (3, 1))
    ens = EnsembleRHS(program, params=P)
    with pytest.raises(ValueError, match="batch"):
        ens.solve((0.0, 0.01), _ic_batch(program, 2))


def test_ensemble_rhs_call_batch_mismatch_regression(servo_numpy):
    # __call__ used to skip the batch check that solve() performs: a
    # mismatched (batch_p, m) / (batch_y, n) pair surfaced as a raw
    # broadcast error (or a silently wrong broadcast when one batch is 1)
    # deep inside the generated module.
    program = servo_numpy.program
    P = np.tile(program.param_vector(), (3, 1))
    ens = EnsembleRHS(program, params=P)
    with pytest.raises(ValueError, match="batch 3 but Y has batch 2"):
        ens(0.0, _ic_batch(program, 2))
    # A batch-1 params stack must not silently broadcast over 4 lanes.
    ens1 = EnsembleRHS(program, params=P[:1])
    with pytest.raises(ValueError, match="batch 1 but Y has batch 4"):
        ens1(0.0, _ic_batch(program, 4))
    # Per-trajectory params reject an unstacked single state vector.
    with pytest.raises(ValueError, match="stacked"):
        ens(0.0, program.start_vector())


def test_ensemble_rhs_integer_state_keeps_float_buffer(servo_numpy):
    # An integer Y stack must not poison the reused float output buffer.
    program = servo_numpy.program
    ens = EnsembleRHS(program)
    Y_int = np.ones((2, program.num_states), dtype=int)
    out = ens(0.0, Y_int)
    assert out.dtype == np.float64
    np.testing.assert_array_equal(
        out, ens(0.0, np.ones((2, program.num_states), dtype=float))
    )
    assert ens(0.0, Y_int.astype(float)).dtype == np.float64
