"""Circuit-breaker state machine: trip, cooldown, half-open probing."""

from __future__ import annotations

import pytest

from repro.runtime import CircuitBreaker, CircuitOpen, RuntimeEvents


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


def make_breaker(clock, **kwargs):
    events = RuntimeEvents()
    defaults = dict(failure_threshold=3, cooldown=10.0, clock=clock,
                    events=events)
    defaults.update(kwargs)
    return CircuitBreaker("process", **defaults), events


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        breaker, _ = make_breaker(clock)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self, clock):
        breaker, events = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert events.count("circuit_open") == 1

    def test_success_resets_the_failure_count(self, clock):
        breaker, _ = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_moves_open_to_half_open(self, clock):
        breaker, events = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.99)
        assert breaker.state == "open"
        clock.advance(0.02)
        assert breaker.state == "half_open"
        assert events.count("circuit_half_open") == 1

    def test_half_open_admits_bounded_probes(self, clock):
        breaker, _ = make_breaker(clock, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # no second concurrent probe

    def test_probe_success_closes(self, clock):
        breaker, events = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert events.count("circuit_closed") == 1

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker, events = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure("probe died")
        assert breaker.state == "open"
        assert breaker.opened_count == 2
        clock.advance(5.0)
        assert breaker.state == "open"  # cooldown restarted
        clock.advance(5.0)
        assert breaker.state == "half_open"
        kinds = [e.kind for e in events]
        assert kinds.count("circuit_open") == 2

    def test_check_raises_structured_circuit_open(self, clock):
        breaker, _ = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpen) as err:
            breaker.check()
        assert err.value.name == "process"
        assert 0.0 < err.value.retry_in <= 10.0

    def test_reset_forces_closed(self, clock):
        breaker, events = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert events.count("circuit_closed") == 1

    def test_every_transition_is_logged(self, clock):
        breaker, events = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        kinds = [e.kind for e in events]
        assert kinds == ["circuit_open", "circuit_half_open",
                         "circuit_closed"]


class TestValidation:
    def test_rejects_bad_parameters(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", half_open_probes=0)
