"""Checkpoint/restart round-trip tests and solver RHS-failure recovery.

The core property: resuming an integration from any checkpoint reproduces
the uninterrupted run within solver tolerance, for every adaptive method
(the multistep families restore their full history, so they continue at
the checkpointed order instead of restarting at order 1).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    Checkpointer,
    RuntimeEvents,
    load_checkpoint,
    save_checkpoint,
)
from repro.solver import (
    GuardedRhs,
    RecoveryPolicy,
    RhsError,
    SolverFailure,
    solve_ivp,
)

ADAPTIVE_METHODS = ("rk45", "adams", "bdf", "lsoda")

Y0 = np.array([1.0, 0.0])
T_END = 8.0


def oscillator(t, y):
    """Damped oscillator: smooth, cheap, non-trivial over (0, 8)."""
    return np.array([y[1], -4.0 * y[0] - 0.1 * y[1]])


class FlakyRhs:
    """Oscillator RHS that fails on a scripted window of call numbers
    (count-based, so step shrinking cannot dodge it — only retries or a
    restart can)."""

    def __init__(self, fail_from, fail_until=None, non_finite=False):
        self.ncalls = 0
        self.fail_from = fail_from
        self.fail_until = (np.inf if fail_until is None else fail_until)
        self.non_finite = non_finite

    def __call__(self, t, y):
        self.ncalls += 1
        if self.fail_from <= self.ncalls <= self.fail_until:
            if self.non_finite:
                return np.array([np.nan, np.nan])
            raise ValueError(f"injected RHS failure (call {self.ncalls})")
        return oscillator(t, y)


def _sample_checkpoint(**over):
    base = dict(
        method="adams", t=1.5, y=np.array([0.25, -0.5]), h=0.01,
        direction=1.0, order=3,
        history={"kind": "adams", "grid_h": 0.01,
                 "f_hist": [[0.1, 0.2], [0.3, 0.4]],
                 "raw_t": [1.49, 1.5], "raw_f": [[0.1, 0.2], [0.3, 0.4]],
                 "reject_streak": 0},
        stats={"nfev": 120, "naccepted": 40},
        rng_seed=7, task_times=[1e-5, 2e-5], meta={"model": "osc"},
    )
    base.update(over)
    return Checkpoint(**base)


class TestCheckpointFormat:
    def test_round_trip_preserves_fields(self, tmp_path):
        path = tmp_path / "ck.json"
        ck = _sample_checkpoint()
        save_checkpoint(ck, path)
        loaded = load_checkpoint(path)
        assert loaded.method == ck.method
        assert loaded.t == ck.t and loaded.h == ck.h
        assert np.array_equal(loaded.y, ck.y)
        assert loaded.order == ck.order
        assert loaded.history == {**ck.history,
                                  "f_hist": ck.history["f_hist"],
                                  "raw_f": ck.history["raw_f"]}
        assert loaded.stats == ck.stats
        assert loaded.rng_seed == 7
        assert loaded.task_times == [1e-5, 2e-5]
        assert loaded.meta == {"model": "osc"}
        assert loaded.version == CHECKPOINT_VERSION

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_sample_checkpoint(), path)
        assert path.exists()
        assert not (tmp_path / "ck.json.tmp").exists()

    def test_overwrite_keeps_file_valid(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_sample_checkpoint(t=1.0), path)
        save_checkpoint(_sample_checkpoint(t=2.0), path)
        assert load_checkpoint(path).t == 2.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nope.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"t": 1.0, "y": [0.0]}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_sample_checkpoint(), path)
        payload = json.loads(path.read_text())
        payload["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_required_field_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_sample_checkpoint(), path)
        payload = json.loads(path.read_text())
        del payload["h"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="missing"):
            load_checkpoint(path)


class TestCheckpointer:
    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(tmp_path / "ck.json", every=0)

    def test_cadence_and_flush(self, tmp_path):
        path = tmp_path / "ck.json"
        events = RuntimeEvents()
        cp = Checkpointer(path, every=5, events=events)
        for i in range(12):
            cp.step(lambda i=i: _sample_checkpoint(t=float(i)))
        assert cp.nsaved == 2          # after steps 5 and 10
        assert load_checkpoint(path).t == 9.0
        assert cp.flush()              # steps 11, 12 were pending
        assert cp.nsaved == 3
        assert load_checkpoint(path).t == 11.0
        assert not cp.flush()          # nothing new since the last save
        assert events.count("checkpoint_saved") == 3

    def test_finalize_merges_runtime_state(self, tmp_path):
        path = tmp_path / "ck.json"
        cp = Checkpointer(path, every=1, rng_seed=123,
                          task_times_source=lambda: [0.5, 0.25],
                          meta={"host": "ci"})
        cp.step(lambda: _sample_checkpoint(rng_seed=None, task_times=None,
                                           meta={}))
        loaded = load_checkpoint(path)
        assert loaded.rng_seed == 123
        assert loaded.task_times == [0.5, 0.25]
        assert loaded.meta == {"host": "ci"}


class TestResumeEquivalence:
    @pytest.mark.parametrize("method", ADAPTIVE_METHODS)
    def test_resume_matches_uninterrupted(self, tmp_path, method):
        full = solve_ivp(oscillator, (0.0, T_END), Y0, method=method)
        assert full.success

        # First leg to the split point; the end-of-run flush leaves the
        # checkpoint exactly at t_split.
        path = tmp_path / "ck.json"
        t_split = 3.0
        first = solve_ivp(oscillator, (0.0, t_split), Y0, method=method,
                          checkpointer=Checkpointer(path, every=10))
        assert first.success
        ck = load_checkpoint(path)
        assert ck.t == pytest.approx(t_split)
        assert ck.method == method

        resumed = solve_ivp(oscillator, (0.0, T_END), Y0, method=method,
                            resume=path)
        assert resumed.success
        assert resumed.ts[0] == pytest.approx(t_split)
        np.testing.assert_allclose(
            resumed.y_final, full.y_final, rtol=1e-3, atol=1e-5
        )

    @pytest.mark.parametrize("method", ("adams", "bdf"))
    def test_resume_restores_multistep_order(self, tmp_path, method):
        path = tmp_path / "ck.json"
        solve_ivp(oscillator, (0.0, 4.0), Y0, method=method,
                  checkpointer=Checkpointer(path, every=10))
        ck = load_checkpoint(path)
        # By t=4 both multistep families are far past order 1.
        assert ck.order > 1
        assert ck.history.get("kind") == method

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(t_split=st.floats(min_value=0.5, max_value=7.5),
           method=st.sampled_from(("rk45", "lsoda")))
    def test_resume_property_arbitrary_split(self, t_split, method):
        """Resume ≡ uninterrupted for an arbitrary split point."""
        full = solve_ivp(oscillator, (0.0, T_END), Y0, method=method)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "ck.json"
            solve_ivp(oscillator, (0.0, t_split), Y0, method=method,
                      checkpointer=Checkpointer(path, every=10))
            resumed = solve_ivp(oscillator, (0.0, T_END), Y0,
                                method=method, resume=path)
        assert resumed.success
        np.testing.assert_allclose(
            resumed.y_final, full.y_final, rtol=1e-3, atol=1e-5
        )

    def test_resume_method_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        save_checkpoint(_sample_checkpoint(method="rk45", history={}),
                        path)
        with pytest.raises(ValueError, match="written by method"):
            solve_ivp(oscillator, (0.0, T_END), Y0, method="bdf",
                      resume=path)

    def test_rk4_rejects_fault_tolerance_options(self, tmp_path):
        with pytest.raises(ValueError, match="adaptive"):
            solve_ivp(oscillator, (0.0, 1.0), Y0, method="rk4",
                      checkpointer=tmp_path / "ck.json")

    def test_checkpointer_accepts_bare_path(self, tmp_path):
        path = tmp_path / "ck.json"
        result = solve_ivp(oscillator, (0.0, 2.0), Y0, method="rk45",
                           checkpointer=path)
        assert result.success
        assert load_checkpoint(path).t == pytest.approx(2.0)


class TestGuardedRhs:
    def test_exception_becomes_rhs_error(self):
        guarded = GuardedRhs(FlakyRhs(fail_from=1))
        with pytest.raises(RhsError) as excinfo:
            guarded(0.5, Y0)
        assert isinstance(excinfo.value.cause, ValueError)
        assert not excinfo.value.non_finite
        assert guarded.nerrors == 1

    def test_non_finite_becomes_rhs_error(self):
        guarded = GuardedRhs(FlakyRhs(fail_from=1, non_finite=True))
        with pytest.raises(RhsError) as excinfo:
            guarded(0.5, Y0)
        assert excinfo.value.non_finite
        assert guarded.nerrors == 1

    def test_clean_path_untouched(self):
        guarded = GuardedRhs(oscillator)
        np.testing.assert_array_equal(guarded(0.0, Y0),
                                      oscillator(0.0, Y0))
        assert guarded.nerrors == 0


class TestRecovery:
    @pytest.mark.parametrize("method", ADAPTIVE_METHODS)
    def test_transient_failure_recovered(self, method):
        clean = solve_ivp(oscillator, (0.0, T_END), Y0, method=method)
        flaky = FlakyRhs(fail_from=40, fail_until=41)
        result = solve_ivp(flaky, (0.0, T_END), Y0, method=method,
                           recovery=RecoveryPolicy(max_retries=5))
        assert result.success
        np.testing.assert_allclose(
            result.y_final, clean.y_final, rtol=1e-3, atol=1e-5
        )

    def test_without_policy_exception_propagates(self):
        with pytest.raises(ValueError, match="injected RHS failure"):
            solve_ivp(FlakyRhs(fail_from=40), (0.0, T_END), Y0,
                      method="rk45")

    @pytest.mark.parametrize("non_finite", (False, True))
    def test_permanent_failure_surfaces_solver_failure(self, non_finite):
        flaky = FlakyRhs(fail_from=40, non_finite=non_finite)
        with pytest.raises(SolverFailure) as excinfo:
            solve_ivp(flaky, (0.0, T_END), Y0, method="rk45",
                      recovery=RecoveryPolicy(max_retries=3))
        failure = excinfo.value
        assert failure.method == "rk45"
        assert failure.retries > 3
        assert 0.0 < failure.t_last < T_END
        assert np.all(np.isfinite(failure.y_last))
        # The partial trajectory ends at the last good state.
        assert failure.ts is not None and failure.ys is not None
        assert failure.ts[-1] == pytest.approx(failure.t_last)
        np.testing.assert_array_equal(failure.ys[-1], failure.y_last)

    def test_failure_then_resume_completes_run(self, tmp_path):
        """The acceptance scenario: crash mid-run, restart from the last
        checkpoint with a healthy RHS, and land on the clean answer."""
        clean = solve_ivp(oscillator, (0.0, T_END), Y0, method="rk45")
        path = tmp_path / "ck.json"
        flaky = FlakyRhs(fail_from=60)
        with pytest.raises(SolverFailure):
            solve_ivp(flaky, (0.0, T_END), Y0, method="rk45",
                      recovery=RecoveryPolicy(max_retries=2),
                      checkpointer=Checkpointer(path, every=3))
        ck = load_checkpoint(path)
        assert 0.0 < ck.t < T_END
        resumed = solve_ivp(oscillator, (0.0, T_END), Y0, method="rk45",
                            resume=ck, checkpointer=path)
        assert resumed.success
        np.testing.assert_allclose(
            resumed.y_final, clean.y_final, rtol=1e-3, atol=1e-5
        )
        # The resumed run keeps checkpointing past the crash point.
        assert load_checkpoint(path).t == pytest.approx(T_END)
