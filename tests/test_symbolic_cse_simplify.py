"""CSE, simplify, expand, and metric tests."""

import pytest

from repro.symbolic import (
    Const,
    ITE,
    Rel,
    Sym,
    add,
    cse,
    cse_grouped,
    depth,
    evaluate,
    expand,
    mul,
    op_count,
    op_histogram,
    pow_,
    simplify,
    sin,
    sqrt,
    substitute,
    symbols,
)

x, y, z = symbols("x y z")


class TestCse:
    def test_shared_subexpression_extracted(self):
        big = (x + y) ** 2
        result = cse([big + sin(big), big * 3])
        assert result.num_extracted == 1
        temp, definition = result.replacements[0]
        assert definition == big
        assert result.exprs[0] == temp + sin(temp)
        assert result.exprs[1] == 3 * temp

    def test_no_sharing_no_extraction(self):
        result = cse([x + y, x * y])
        assert result.num_extracted == 0
        assert result.exprs == (x + y, x * y)

    def test_nested_extraction_ordered(self):
        inner = x + y
        outer = sin(inner) * 2
        exprs = [outer + inner, outer - inner]
        result = cse(exprs)
        # Each temp's definition may only reference earlier temps.
        defined = set()
        for temp, definition in result.replacements:
            from repro.symbolic import free_symbols

            for s in free_symbols(definition):
                if s.name.startswith("cse"):
                    assert s.name in defined
            defined.add(temp.name)

    def test_semantics_preserved(self):
        exprs = [
            sqrt((x - y) ** 2 + 1) * sin((x - y) ** 2 + 1),
            ((x - y) ** 2 + 1) ** 2,
        ]
        result = cse(exprs)
        assert result.num_extracted >= 1
        env = {"x": 1.3, "y": -0.4}
        temp_env = dict(env)
        for temp, definition in result.replacements:
            temp_env[temp.name] = evaluate(definition, temp_env)
        for original, rewritten in zip(exprs, result.exprs):
            assert evaluate(rewritten, temp_env) == pytest.approx(
                evaluate(original, env)
            )

    def test_leaves_never_extracted(self):
        result = cse([x + 1, x + 2, x * 3])
        for _, definition in result.replacements:
            assert definition.args

    def test_cheap_scaling_not_extracted(self):
        # 2*x appears twice but is cheaper to recompute than to name.
        result = cse([2 * x + y, 2 * x + z])
        assert all(
            definition != 2 * x for _, definition in result.replacements
        )

    def test_custom_prefix_and_start(self):
        big = sin(x + y)
        result = cse([big, big * 2], symbol_prefix="tmp", start_index=5)
        assert result.replacements[0][0].name == "tmp5"

    def test_grouped_no_cross_group_sharing(self):
        big = (x + y) ** 2
        # Same expensive expression in two different groups: each group
        # keeps its own copy (the paper's per-task CSE regime).
        results = cse_grouped([[big + 1, big + 2], [big + 3, big + 4]])
        assert results[0].num_extracted == 1
        assert results[1].num_extracted == 1
        names = {r.replacements[0][0].name for r in results}
        assert len(names) == 2  # globally unique temp names

    def test_grouped_vs_global_counts(self):
        shared = sin(x * y + 1)
        groups = [[shared + i] for i in range(4)]
        grouped = cse_grouped(groups)
        glob = cse([shared + i for i in range(4)])
        assert sum(r.num_extracted for r in grouped) == 0  # no sharing inside
        assert glob.num_extracted == 1  # sharing across


class TestSimplify:
    def test_constant_relational_folds(self):
        assert simplify(Rel("<", Const(1), Const(2))) == Const(1)
        assert simplify(Rel(">", Const(1), Const(2))) == Const(0)

    def test_ite_constant_condition(self):
        assert simplify(ITE(Const(1), x, y)) == x
        assert simplify(ITE(Const(0), x, y)) == y

    def test_ite_equal_branches(self):
        assert simplify(ITE(Rel("<", x, y), z, z)) == z

    def test_boolop_short_circuit(self):
        from repro.symbolic import BoolOp

        e = BoolOp("and", [Rel("<", Const(2), Const(1)), Rel("<", x, y)])
        assert simplify(e) == Const(0)
        e = BoolOp("or", [Rel("<", Const(1), Const(2)), Rel("<", x, y)])
        assert simplify(e) == Const(1)

    def test_boolop_neutral_dropped(self):
        from repro.symbolic import BoolOp

        e = BoolOp("and", [Rel("<", Const(1), Const(2)), Rel("<", x, y)])
        assert simplify(e) == Rel("<", x, y)

    def test_rebuild_collects(self):
        # After substitution, a rebuild should re-canonicalise.
        e = substitute(x + y, {y: x})
        assert simplify(e) == 2 * x


class TestExpand:
    def test_product_of_sums(self):
        e = expand((x + y) * (x - y))
        assert e == x**2 - y**2

    def test_power_of_sum(self):
        e = expand((x + y) ** 2)
        assert e == x**2 + 2 * x * y + y**2

    def test_cube(self):
        e = expand((x + 1) ** 3)
        assert e == x**3 + 3 * x**2 + 3 * x + 1

    def test_non_integer_power_untouched(self):
        e = (x + y) ** Const(0.5)
        assert expand(e) == e

    def test_semantics_preserved(self):
        e = (x + 2 * y) * (3 * x - y) * (x + 1)
        env = {"x": 0.7, "y": -1.2}
        assert evaluate(expand(e), env) == pytest.approx(evaluate(e, env))

    def test_inside_function(self):
        e = sin((x + y) * (x - y))
        expanded = expand(e)
        assert expanded == sin(x**2 - y**2)


class TestMetrics:
    def test_histogram(self):
        e = x + y * z + sin(x) - x / y
        h = op_histogram(e)
        assert h.adds == 3
        assert h.calls == 1
        assert h.divs == 1
        assert h.total == op_count(e)

    def test_pow_classification(self):
        assert op_histogram(x ** Const(-1)).divs == 1
        assert op_histogram(x ** Const(2.5)).pows == 1

    def test_depth(self):
        assert depth(x) == 1
        assert depth(x + y) == 2
        assert depth(sin(x + y)) == 3

    def test_histogram_addition(self):
        h = op_histogram(x + y) + op_histogram(x * y)
        assert h.adds == 1 and h.muls == 1

    def test_branches_counted(self):
        e = ITE(Rel("<", x, y), x + y, x * y)
        h = op_histogram(e)
        assert h.branches == 1
        assert h.cmps == 1
