"""Process-executor tests: shared-memory supervisor/worker pool.

The contract under test is the ISSUE 5 acceptance bar: ``ProcessExecutor``
is a drop-in peer of ``SerialExecutor``/``ThreadedExecutor`` — the same
``evaluate(t, y, p, res, schedule)`` call, *bit-identical* results on all
four example models (tasks are pure functions of ``(t, y, p)`` writing
disjoint slots, so process boundaries must not change a single bit) — and
the pool survives worker processes dying mid-round (including SIGKILL)
without deadlocking, recording every recovery step in RuntimeEvents.
"""

from __future__ import annotations

import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.apps import (
    Bearing3dParams,
    BearingParams,
    build_bearing2d,
    build_bearing3d,
    build_powerplant,
    build_servo,
)
from repro.frontend import compile_model
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    ParallelRHS,
    ProcessExecutor,
    RuntimeEvents,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.schedule import SemiDynamicScheduler, lpt_schedule

#: the four example models, kept small enough for per-test pools
MODEL_BUILDERS = {
    "servo": build_servo,
    "powerplant": build_powerplant,
    "bearing2d": lambda: build_bearing2d(BearingParams(num_rollers=4)),
    "bearing3d": lambda: build_bearing3d(
        Bearing3dParams(num_rollers=4, contact_harmonics=2)
    ),
}


@pytest.fixture(scope="module", params=sorted(MODEL_BUILDERS))
def any_program(request):
    return compile_model(MODEL_BUILDERS[request.param]()).program


@pytest.fixture(scope="module")
def program(compiled_small_bearing):
    return compiled_small_bearing.program


def _serial_reference(program, t, y, p):
    res = program.results_buffer()
    SerialExecutor(program).evaluate(t, y, p, res)
    return res


def _task_on_worker(program, num_workers, worker):
    schedule = lpt_schedule(program.task_graph, num_workers)
    for tid in range(program.num_tasks):
        if schedule.assignment[tid] == worker:
            return tid
    raise AssertionError("no task scheduled on that worker")


class TestEquivalenceMatrix:
    """Bit-identical ``ydot`` across serial/thread/process on all four
    example models, at the start vector and at a perturbed state."""

    def test_executors_bit_identical(self, any_program):
        program = any_program
        p = program.param_vector()
        rng = np.random.default_rng(7)
        states = [
            (0.0, program.start_vector()),
            (0.375, program.start_vector()
             * (1.0 + 0.01 * rng.standard_normal(program.num_states))),
        ]
        refs = [_serial_reference(program, t, y, p) for t, y in states]
        with ThreadedExecutor(program, num_workers=2) as threaded, \
                ProcessExecutor(program, num_workers=2) as procs:
            for executor in (threaded, procs):
                for (t, y), ref in zip(states, refs):
                    res = program.results_buffer()
                    executor.evaluate(t, y, p, res)
                    np.testing.assert_array_equal(res, ref)

    def test_many_rounds_and_measured_times(self, program):
        p = program.param_vector()
        y = program.start_vector()
        ref = _serial_reference(program, 0.0, y, p)
        with ProcessExecutor(program, num_workers=2) as executor:
            for _ in range(10):
                res = program.results_buffer()
                executor.evaluate(0.0, y, p, res)
                np.testing.assert_array_equal(res, ref)
            # Measured per-task wall times crossed back through shared
            # memory — the semi-dynamic LPT's feedback signal.
            assert executor.last_task_times.sum() > 0
            assert (executor.last_task_times >= 0).all()

    def test_parallel_rhs_facade(self, program):
        with ProcessExecutor(program, num_workers=2) as executor:
            f = ParallelRHS(program, executor)
            y = program.start_vector()
            np.testing.assert_array_equal(f(0.0, y), program.rhs(0.0, y))
            assert f.ncalls == 1

    def test_semidynamic_feedback_loop(self, program):
        scheduler = SemiDynamicScheduler(program.task_graph, 2,
                                         reschedule_every=2)
        with ProcessExecutor(program, num_workers=2) as executor:
            f = ParallelRHS(program, executor, scheduler=scheduler,
                            feed_measurements=True)
            y = program.start_vector()
            expected = program.rhs(0.0, y)
            for _ in range(4):
                np.testing.assert_array_equal(f(0.0, y), expected)
        assert scheduler.num_reschedules == 2


class TestValidation:
    def test_invalid_construction(self, program):
        with pytest.raises(ValueError):
            ProcessExecutor(program, num_workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(program, num_workers=1, level_timeout=0.0)
        with pytest.raises(ValueError):
            ProcessExecutor(program, num_workers=1,
                            heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_schedule_mismatch(self, program):
        schedule = lpt_schedule(program.task_graph, 5)
        with ProcessExecutor(program, num_workers=2) as executor:
            with pytest.raises(ValueError, match="schedule is for 5"):
                executor.evaluate(
                    0.0, program.start_vector(), program.param_vector(),
                    program.results_buffer(), schedule,
                )

    def test_wrong_param_length(self, program):
        with ProcessExecutor(program, num_workers=1) as executor:
            with pytest.raises(ValueError, match="parameter vector"):
                executor.evaluate(
                    0.0, program.start_vector(), np.zeros(1),
                    program.results_buffer(),
                )

    def test_closed_executor_rejects_work(self, program):
        executor = ProcessExecutor(program, num_workers=1)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            executor.evaluate(0.0, program.start_vector(),
                              program.param_vector(),
                              program.results_buffer())


class TestProcessFaults:
    def test_sigkilled_worker_mid_round_recovers(self, program):
        """The acceptance-criteria case: a worker SIGKILLs itself inside
        a task (no farewell message, heartbeat stops, pipe EOFs); the
        round must complete bit-identically with recovery events logged,
        not deadlock."""
        p = program.param_vector()
        y = program.start_vector()
        ref = _serial_reference(program, 0.0, y, p)
        tid = _task_on_worker(program, 2, 0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode="kill", worker=0)], events=events
        )
        with ProcessExecutor(program, num_workers=2, injector=injector,
                             events=events, level_timeout=10.0) as executor:
            res = program.results_buffer()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                executor.evaluate(0.0, y, p, res)
            np.testing.assert_array_equal(res, ref)
            assert events.count("worker_dead") == 1
            # The dead worker's tasks went *somewhere* on the recovery
            # ladder: reassigned if the survivor was idle at detection
            # time, inline on the supervisor if it was still busy.
            assert (events.count("task_reassigned")
                    + events.count("task_inline")
                    + events.count("worker_timeout")) >= 1
            # The survivor keeps serving subsequent rounds.
            res2 = program.results_buffer()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                executor.evaluate(0.0, y, p, res2)
            np.testing.assert_array_equal(res2, ref)

    def test_externally_sigkilled_worker_between_rounds(self, program):
        p = program.param_vector()
        y = program.start_vector()
        ref = _serial_reference(program, 0.0, y, p)
        events = RuntimeEvents()
        with ProcessExecutor(program, num_workers=2,
                             events=events) as executor:
            res = program.results_buffer()
            executor.evaluate(0.0, y, p, res)
            os.kill(executor._procs[0].pid, signal.SIGKILL)
            executor._procs[0].join(timeout=5.0)
            res2 = program.results_buffer()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                executor.evaluate(0.0, y, p, res2)
            np.testing.assert_array_equal(res2, ref)
            assert events.count("worker_dead") == 1

    def test_raise_retries_on_same_worker(self, program):
        p = program.param_vector()
        y = program.start_vector()
        ref = _serial_reference(program, 0.0, y, p)
        tid = _task_on_worker(program, 2, 0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode="raise", worker=0, count=1)],
            events=events,
        )
        with ProcessExecutor(program, num_workers=2, injector=injector,
                             events=events) as executor:
            res = program.results_buffer()
            executor.evaluate(0.0, y, p, res)
            np.testing.assert_array_equal(res, ref)
            assert events.count("task_retry") == 1
            assert events.count("fault_injected") == 1

    @pytest.mark.parametrize("mode", ["nan", "inf"])
    def test_nonfinite_output_caught_and_recovered(self, program, mode):
        p = program.param_vector()
        y = program.start_vector()
        ref = _serial_reference(program, 0.0, y, p)
        tid = _task_on_worker(program, 2, 0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode=mode, worker=0, count=1)],
            events=events,
        )
        with ProcessExecutor(program, num_workers=2, injector=injector,
                             events=events) as executor:
            res = program.results_buffer()
            executor.evaluate(0.0, y, p, res)
            np.testing.assert_array_equal(res, ref)
            assert events.count("task_nonfinite") == 1

    def test_hung_worker_hits_round_timeout(self, program):
        p = program.param_vector()
        y = program.start_vector()
        ref = _serial_reference(program, 0.0, y, p)
        tid = _task_on_worker(program, 2, 0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode="hang", worker=0,
                       hang_seconds=30.0)],
            events=events,
        )
        with ProcessExecutor(program, num_workers=2, injector=injector,
                             events=events, level_timeout=0.3) as executor:
            res = program.results_buffer()
            start = time.monotonic()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                executor.evaluate(0.0, y, p, res)
            assert time.monotonic() - start < 10.0  # no deadlock
            np.testing.assert_array_equal(res, ref)
            assert events.count("worker_timeout") == 1
            assert events.count("worker_dead") == 1

    def test_all_workers_dead_degrades_to_serial(self, program):
        p = program.param_vector()
        y = program.start_vector()
        ref = _serial_reference(program, 0.0, y, p)
        events = RuntimeEvents()
        with ProcessExecutor(program, num_workers=2,
                             events=events) as executor:
            for proc in executor._procs:
                os.kill(proc.pid, signal.SIGKILL)
            for proc in executor._procs:
                proc.join(timeout=5.0)
            res = program.results_buffer()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                executor.evaluate(0.0, y, p, res)
            np.testing.assert_array_equal(res, ref)
            assert executor.degraded
            assert events.count("degraded") == 1


class TestResourceHygiene:
    def test_close_unlinks_all_shared_memory(self, program):
        executor = ProcessExecutor(program, num_workers=2)
        names = [shm.name for shm in executor._shms.values()]
        # y, p, res, times, hb + the K-stage blocks kst, sres, prog, ctl
        assert len(names) == 9
        executor.close()
        shm_dir = "/dev/shm"
        if os.path.isdir(shm_dir):
            leftovers = [n for n in names
                         if os.path.exists(os.path.join(shm_dir, n))]
            assert leftovers == []

    def test_close_survives_dead_pool(self, program):
        executor = ProcessExecutor(program, num_workers=2)
        for proc in executor._procs:
            os.kill(proc.pid, signal.SIGKILL)
        executor.close()
        assert executor._shms == {}

    def test_sigkilled_supervisor_leaves_no_orphans_or_segments(self):
        """SIGKILL the *supervisor* process: the orphan watchdog must
        take the workers down with it (under fork a worker inherits
        sibling pipe ends, so it never sees EOF), and with every
        tracker-pipe holder gone the resource tracker unlinks the shm
        segments.  Regression: workers used to survive forever and pin
        the segments."""
        import subprocess
        import sys

        script = (
            "import os, sys, time\n"
            "from repro.apps import build_bearing2d, BearingParams\n"
            "from repro.frontend import compile_model\n"
            "from repro.runtime import ProcessExecutor\n"
            "program = compile_model(\n"
            "    build_bearing2d(BearingParams(num_rollers=4))).program\n"
            "ex = ProcessExecutor(program, num_workers=2)\n"
            "print('|'.join(str(p.pid) for p in ex._procs), flush=True)\n"
            "print('|'.join(s.name for s in ex._shms.values()), flush=True)\n"
            "time.sleep(60)\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ, PYTHONPATH=src_dir)
        proc = subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE, text=True, env=env)
        try:
            worker_pids = [int(x) for x in
                           proc.stdout.readline().split("|")]
            segment_names = proc.stdout.readline().split("|")
            assert len(worker_pids) == 2 and len(segment_names) == 9
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

            def workers_gone() -> bool:
                for pid in worker_pids:
                    try:
                        os.kill(pid, 0)
                    except ProcessLookupError:
                        continue
                    return False
                return True

            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not workers_gone():
                time.sleep(0.1)
            assert workers_gone(), "workers outlived a SIGKILL'd supervisor"
            if os.path.isdir("/dev/shm"):
                deadline = time.monotonic() + 10.0
                leftovers = segment_names
                while time.monotonic() < deadline and leftovers:
                    leftovers = [n for n in segment_names
                                 if os.path.exists(os.path.join(
                                     "/dev/shm", n.lstrip("/")))]
                    time.sleep(0.1)
                assert leftovers == [], f"leaked segments: {leftovers}"
        finally:
            proc.kill()
            for name in segment_names:
                try:
                    os.unlink(os.path.join("/dev/shm", name.lstrip("/")))
                except OSError:
                    pass


class TestRebuildSpec:
    def test_spec_is_picklable_and_rebuilds(self, program):
        import pickle

        spec = pickle.loads(pickle.dumps(program.rebuild_spec()))
        assert spec.num_tasks == program.num_tasks
        assert spec.task_slots == tuple(
            program.task_output_slots(tid)
            for tid in range(program.num_tasks)
        )
        tasks = spec.build_tasks()
        assert len(tasks) == program.num_tasks
        y = program.start_vector()
        p = program.param_vector()
        res = program.results_buffer()
        ref = _serial_reference(program, 0.0, y, p)
        from repro.runtime import dependency_levels

        for level in dependency_levels(program.task_graph):
            for tid in level:
                tasks[tid](0.0, y, p, res)
        np.testing.assert_array_equal(res, ref)
