"""Tests of the pass-based compiler driver (repro.compiler).

Covers: bit-identical equivalence with the pre-refactor monolithic
pipeline on all four example models, pass-manager mechanics
(registration contracts, run_until/skip), content-addressed artifact
caching (memory and disk, asserted via the metrics dict), early backend
validation, keyword-argument validation, diagnostics provenance, the
per-pass observability surfaced through ``CompiledModel.summary()`` and
the ``repro compile`` CLI verb.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import partition
from repro.apps import (
    BearingParams,
    Bearing3dParams,
    build_bearing2d,
    build_bearing3d,
    build_powerplant,
    build_servo,
)
from repro.codegen import generate_program, make_ode_system
from repro.compiler import (
    ArtifactCache,
    CACHE_SKIPPED_PASSES,
    CompilationContext,
    CompileError,
    CompileOptions,
    Pass,
    PassManager,
    PipelineReport,
    build_default_manager,
    compile_context,
    model_fingerprint,
)
from repro.frontend import compile_model, compile_source
from repro.model import check_types


_BUILDERS = {
    "servo": build_servo,
    "powerplant": build_powerplant,
    "bearing2d": lambda: build_bearing2d(BearingParams(num_rollers=4)),
    "bearing3d": lambda: build_bearing3d(
        Bearing3dParams(num_rollers=4, contact_harmonics=2)
    ),
}


def _monolith_compile(model, backend):
    """The pre-refactor frontend.compile_model, inlined verbatim (plus the
    fuse_tasks coarsening both paths now run, fed the same SCC blocks)."""
    flat = model.flatten()
    check_types(flat)
    part = partition(flat)
    system = make_ode_system(flat)
    return generate_program(system, backend=backend,
                            blocks=part.membership)


class TestMonolithEquivalence:
    """The pass driver must reproduce the monolith bit for bit."""

    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_identical_generated_source_and_rhs(self, name, backend):
        old = _monolith_compile(_BUILDERS[name](), backend)
        new = compile_model(_BUILDERS[name](), backend=backend).program

        assert new.module.source == old.module.source
        if backend == "numpy":
            assert new.vector_module is not None
            assert new.vector_module.source == old.vector_module.source
        else:
            assert new.vector_module is None

        y0 = old.start_vector()
        assert np.array_equal(new.rhs(0.0, y0), old.rhs(0.0, y0))

    def test_task_plan_and_reports_match(self):
        model = _BUILDERS["bearing2d"]()
        old = _monolith_compile(model, "python")
        new = compile_model(_BUILDERS["bearing2d"]()).program
        assert new.num_tasks == old.num_tasks
        assert [t.weight for t in new.task_graph] == \
            [t.weight for t in old.task_graph]
        assert new.verify_report == old.verify_report
        assert new.plan.partial_slots == old.plan.partial_slots


class TestPassManager:
    def test_default_pipeline_order(self):
        manager = build_default_manager()
        names = manager.pass_names
        assert names.index("flatten") < names.index("typecheck")
        assert names.index("partition") < names.index("codegen")
        assert names[-1] == "cache-store"

    def test_duplicate_name_rejected(self):
        manager = build_default_manager()
        with pytest.raises(ValueError, match="duplicate pass"):
            manager.register(Pass("flatten", lambda ctx: None))

    def test_requires_contract_checked_at_registration(self):
        manager = PassManager()
        with pytest.raises(ValueError, match="requires"):
            manager.register(
                Pass("needs-flat", lambda ctx: None, requires=("flat",))
            )

    def test_register_after(self):
        manager = build_default_manager()
        manager.register(
            Pass("custom", lambda ctx: None, requires=("flat",)),
            after="flatten",
        )
        names = manager.pass_names
        assert names.index("custom") == names.index("flatten") + 1

    def test_run_until_stops_early(self):
        ctx = compile_context(model=build_servo(), until="partition")
        assert ctx.partition is not None
        assert ctx.system is None
        assert ctx.program is None

    def test_skip_pass(self):
        ctx = compile_context(model=build_servo(), skip=("typecheck",))
        assert ctx.types is None
        assert ctx.program is not None
        skipped = ctx.metrics["passes_skipped"]
        assert skipped["typecheck"] == "skipped by caller"

    def test_skip_unknown_pass_rejected(self):
        with pytest.raises(KeyError, match="unknown pass"):
            compile_context(model=build_servo(), skip=("no-such-pass",))

    def test_skipping_load_bearing_pass_fails_loudly(self):
        with pytest.raises(CompileError, match="missing required artifact"):
            compile_context(model=build_servo(), skip=("transform",))

    def test_per_pass_metrics_recorded(self):
        ctx = compile_context(model=build_servo())
        ran = {m["name"]: m for m in ctx.pass_metrics if m["status"] == "ran"}
        for name in ("flatten", "typecheck", "partition", "transform",
                     "verify", "tasks", "codegen", "link"):
            assert name in ran
            assert ran[name]["wall_s"] >= 0.0
        assert ran["flatten"]["nodes_after"] > 0
        assert ctx.metrics["compile_wall_s"] > 0.0

    def test_dump_after_snapshots(self):
        ctx = compile_context(
            model=build_servo(),
            options=CompileOptions(dump_after=("transform", "codegen")),
        )
        assert set(ctx.dumps) == {"transform", "codegen"}
        assert "system" in ctx.dumps["transform"]
        assert "def RHS" in ctx.dumps["codegen"]


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = build_servo().flatten()
        b = build_servo().flatten()
        assert model_fingerprint(a) == model_fingerprint(b)

    def test_differs_between_models(self):
        servo = build_servo().flatten()
        plant = build_powerplant().flatten()
        assert model_fingerprint(servo) != model_fingerprint(plant)

    def test_options_change_cache_key(self):
        from repro.compiler import artifact_key

        h = model_fingerprint(build_servo().flatten())
        assert artifact_key(h, CompileOptions(backend="python")) != \
            artifact_key(h, CompileOptions(backend="numpy"))
        assert artifact_key(h, CompileOptions()) != \
            artifact_key(h, CompileOptions(jacobian=True))


class TestArtifactCache:
    def test_second_compile_hits_and_skips(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        opts = CompileOptions(backend="numpy", cache=cache)

        ctx1 = compile_context(model=build_servo(), options=opts)
        assert ctx1.metrics["cache_hit"] is False
        assert ctx1.metrics["passes_skipped"].keys().isdisjoint(
            CACHE_SKIPPED_PASSES
        )

        ctx2 = compile_context(model=build_servo(), options=opts)
        # The acceptance assertion: the metrics dict proves analysis and
        # codegen were skipped on the hit.
        assert ctx2.metrics["cache_hit"] is True
        for name in CACHE_SKIPPED_PASSES:
            assert ctx2.metrics["passes_skipped"][name] == "artifact cache hit"
        assert ctx2.program.module.source == ctx1.program.module.source

    def test_disk_reload_across_cache_instances(self, tmp_path):
        root = tmp_path / "cache"
        opts1 = CompileOptions(backend="numpy", jacobian=True,
                               cache=ArtifactCache(root))
        ctx1 = compile_context(model=build_servo(), options=opts1)

        # Fresh cache object: memory empty, must come back from disk.
        opts2 = CompileOptions(backend="numpy", jacobian=True,
                               cache=ArtifactCache(root))
        ctx2 = compile_context(model=build_servo(), options=opts2)
        assert ctx2.metrics["cache_hit"] is True

        y0 = ctx1.program.start_vector()
        assert np.array_equal(ctx2.program.rhs(0.0, y0),
                              ctx1.program.rhs(0.0, y0))
        jac1, jac2 = ctx1.program.make_jac(), ctx2.program.make_jac()
        assert jac1 is not None and jac2 is not None
        assert np.array_equal(jac2(0.0, y0), jac1(0.0, y0))
        Y = np.tile(y0, (3, 1))
        assert np.array_equal(ctx2.program.rhs_batch(0.0, Y),
                              ctx1.program.rhs_batch(0.0, Y))
        assert ctx2.partition.num_subsystems == ctx1.partition.num_subsystems
        assert ctx2.plan.partial_slots == ctx1.plan.partial_slots
        assert ctx2.verify_report == ctx1.verify_report

    def test_different_options_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        compile_context(model=build_servo(),
                        options=CompileOptions(cache=cache))
        ctx = compile_context(
            model=build_servo(),
            options=CompileOptions(cache=cache, jacobian=True),
        )
        assert ctx.metrics["cache_hit"] is False

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        root = tmp_path / "cache"
        cache = ArtifactCache(root)
        opts = CompileOptions(cache=cache)
        ctx = compile_context(model=build_servo(), options=opts)
        artifact = root / f"{ctx.cache_key}.json"
        assert artifact.exists()
        artifact.write_text("{not json")

        ctx2 = compile_context(
            model=build_servo(),
            options=CompileOptions(cache=ArtifactCache(root)),
        )
        assert ctx2.metrics["cache_hit"] is False
        assert ctx2.program is not None

    def test_memory_only_cache(self):
        cache = ArtifactCache()
        opts = CompileOptions(cache=cache)
        compile_context(model=build_servo(), options=opts)
        ctx = compile_context(model=build_servo(), options=opts)
        assert ctx.metrics["cache_hit"] is True
        assert cache.hits == 1 and cache.misses == 1


class TestEarlyValidation:
    def test_unknown_backend_lists_all_four(self):
        with pytest.raises(ValueError, match="unknown backend") as exc:
            compile_model(build_servo(), backend="mlir")
        text = str(exc.value)
        for name in ("python", "numpy", "c", "fortran"):
            assert name in text

    def test_backend_typo_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'python'"):
            compile_model(build_servo(), backend="pyton")

    def test_validated_before_any_pass_runs(self):
        # The options object itself rejects the backend, so not even
        # flattening happens — previously this surfaced after the whole
        # front half of the pipeline had run.
        with pytest.raises(ValueError, match="unknown backend"):
            CompileOptions(backend="wasm")

    def test_compile_source_unknown_kwarg_with_suggestion(self):
        with pytest.raises(TypeError, match="did you mean 'jacobian'"):
            compile_source("MODEL m; END m;", jacobain=True)

    def test_compile_source_unknown_kwarg_lists_options(self):
        with pytest.raises(TypeError, match="valid options"):
            compile_source("MODEL m; END m;", totally_bogus=1)


def _bad_types_model():
    """Flattens fine but fails type derivation (wrong call arity)."""
    from repro.model import Model, ModelClass
    from repro.symbolic.expr import Call

    cls = ModelClass("C")
    x = cls.state("x", start=1.0)
    cls.ode(x, Call("atan2", [x]), label="Eq")
    model = Model("bad")
    model.instance("I", cls)
    return model


class TestDiagnostics:
    def test_strict_mode_preserves_exception_and_records_provenance(self):
        from repro.model.typecheck import TypeError_

        ctx = CompilationContext(model=_bad_types_model())
        with pytest.raises(TypeError_, match="atan2 expects 2"):
            build_default_manager().run(ctx)
        assert len(ctx.errors) == 1
        diag = ctx.errors[0]
        assert diag.pass_name == "typecheck"
        assert diag.model == "bad"
        assert "atan2" in diag.message

    def test_collect_mode_raises_single_compile_error(self):
        ctx = CompilationContext(
            model=_bad_types_model(),
            options=CompileOptions(collect_errors=True),
        )
        with pytest.raises(CompileError) as exc:
            build_default_manager().run(ctx)
        assert "typecheck" in str(exc.value)
        assert "bad" in str(exc.value)
        assert exc.value.diagnostics[0].pass_name == "typecheck"

    def test_failed_pass_recorded_in_metrics(self):
        ctx = CompilationContext(model=_bad_types_model())
        with pytest.raises(Exception):
            build_default_manager().run(ctx)
        statuses = {m["name"]: m["status"] for m in ctx.pass_metrics}
        assert statuses["typecheck"] == "failed"


class TestObservabilitySurface:
    def test_compiled_model_summary_reports_compile_time(self):
        compiled = compile_model(build_servo())
        text = compiled.summary()
        assert "compile" in text
        assert "codegen" in text
        assert compiled.model_hash is not None

    def test_pipeline_report_roundtrips_json(self):
        compiled = compile_model(build_servo())
        obj = json.loads(compiled.report.to_json())
        assert obj["model"] == "servo"
        assert obj["model_hash"] == compiled.model_hash
        names = [p["name"] for p in obj["passes"]]
        assert "codegen" in names and "transform" in names
        assert obj["total_wall_s"] > 0

    def test_report_query_helpers(self):
        report = compile_model(build_servo()).report
        assert report.ran("codegen")
        assert not report.ran("parse")
        assert report.pass_wall_s("codegen") >= 0.0
        with pytest.raises(KeyError):
            report.pass_wall_s("no-such-pass")


_CLI_MODEL = """
MODEL pipe_cli;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
END pipe_cli;
"""


class TestCompileCli:
    @pytest.fixture()
    def model_file(self, tmp_path):
        path = tmp_path / "model.om"
        path.write_text(_CLI_MODEL)
        return str(path)

    def test_explain_prints_pass_table(self, model_file, capsys):
        from repro.cli import main

        assert main(["compile", model_file, "--explain"]) == 0
        out = capsys.readouterr().out
        for fragment in ("compile pipeline", "model hash:", "codegen",
                         "transform", "total:"):
            assert fragment in out

    def test_report_json_written(self, model_file, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "results" / "pipeline.json"
        assert main([
            "compile", model_file, "--report", str(report_path),
        ]) == 0
        obj = json.loads(report_path.read_text())
        assert obj["model"] == "pipe_cli"
        assert any(p["name"] == "codegen" for p in obj["passes"])

    def test_cache_dir_hit_on_second_invocation(self, model_file, tmp_path,
                                                capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        assert main(["compile", model_file, "--explain",
                     "--cache-dir", cache_dir]) == 0
        assert "cache: miss/disabled" in capsys.readouterr().out
        assert main(["compile", model_file, "--explain",
                     "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache: hit" in out
        assert "skipped (artifact cache hit)" in out

    def test_dump_after(self, model_file, capsys):
        from repro.cli import main

        assert main(["compile", model_file, "--dump-after", "codegen"]) == 0
        out = capsys.readouterr().out
        assert "dump after pass codegen" in out
        assert "def RHS" in out

    def test_bad_model_reports_diagnostic_not_traceback(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        bad = tmp_path / "bad.om"
        bad.write_text("MODEL b; CLASS C STATE x := ; END C; END b;")
        assert main(["compile", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "error[parse]" in err
        assert "Traceback" not in err
