"""Tests of the one-call pipeline facade (repro.frontend)."""

import numpy as np
import pytest

from repro import CompiledModel, compile_model, compile_source
from repro.codegen import CostModel


_SRC = """
MODEL front;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
END front;
"""


class TestCompileSource:
    def test_produces_all_stages(self):
        compiled = compile_source(_SRC)
        assert isinstance(compiled, CompiledModel)
        assert compiled.name == "front"
        assert compiled.flat.num_states == 2
        assert compiled.types.num_checked_equations == 2
        assert compiled.partition.num_subsystems == 1
        assert compiled.system.num_states == 2
        assert compiled.program.num_tasks >= 1

    def test_summary_mentions_everything(self):
        text = compile_source(_SRC).summary()
        for fragment in ("states", "SCC", "task", "CSE"):
            assert fragment in text

    def test_jacobian_flag(self):
        compiled = compile_source(_SRC, jacobian=True)
        jac = compiled.program.make_jac()
        assert jac is not None
        J = jac(0.0, np.array([1.0, 0.0]))
        assert J[1, 0] == pytest.approx(-4.0)

    def test_custom_cost_model(self):
        heavy_overhead = CostModel(task_overhead=1.0)
        compiled = compile_source(_SRC, cost_model=heavy_overhead)
        # Gigantic task overhead: everything grouped into one task.
        assert compiled.program.num_tasks == 1

    def test_threshold_passthrough(self):
        compiled = compile_source(_SRC, group_threshold=0.0,
                                  split_threshold=float("inf"))
        assert compiled.program.num_tasks == 2


class TestCompileModel:
    def test_accepts_flat_model(self, oscillator_model):
        flat = oscillator_model.flatten()
        compiled = compile_model(flat)
        assert compiled.model is None
        assert compiled.flat is flat
        assert compiled.program.num_states == 4

    def test_accepts_model(self, oscillator_model):
        compiled = compile_model(oscillator_model)
        assert compiled.model is oscillator_model

    def test_extra_classes_forwarded(self):
        from repro.model import ModelClass

        ext = ModelClass("Ext")
        x = ext.state("x", start=2.0)
        ext.ode(x, -x)
        compiled = compile_source(
            "MODEL m; INSTANCE E INHERITS Ext; END m;",
            extra_classes={"Ext": ext},
        )
        assert compiled.flat.states["E.x"].start == 2.0
