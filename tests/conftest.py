"""Shared fixtures: small reference models compiled once per session."""

from __future__ import annotations

import pytest

from repro.apps import (
    BearingParams,
    build_bearing2d,
    build_powerplant,
    build_servo,
)
from repro.frontend import compile_model


@pytest.fixture(scope="session")
def oscillator_model():
    """Two independent harmonic oscillators (programmatic model)."""
    from repro.model import Model, ModelClass

    osc = ModelClass("Oscillator")
    x = osc.state("x", start=1.0)
    v = osc.state("v", start=0.0)
    k = osc.parameter("k", 4.0)
    osc.ode(x, v, label="Kin")
    osc.ode(v, -k * x, label="Dyn")

    model = Model("twoosc")
    model.instance("A", osc)
    model.instance("B", osc, overrides={"k": 9.0, "x": 2.0})
    return model


@pytest.fixture(scope="session")
def small_bearing_model():
    """A 4-roller bearing: same structure as the paper's, faster to build."""
    return build_bearing2d(BearingParams(num_rollers=4))


@pytest.fixture(scope="session")
def bearing_model():
    """The paper's 10-roller 2D bearing."""
    return build_bearing2d(BearingParams(num_rollers=10))


@pytest.fixture(scope="session")
def powerplant_model():
    return build_powerplant()


@pytest.fixture(scope="session")
def servo_model():
    return build_servo()


@pytest.fixture(scope="session")
def compiled_small_bearing(small_bearing_model):
    return compile_model(small_bearing_model)


@pytest.fixture(scope="session")
def compiled_bearing(bearing_model):
    return compile_model(bearing_model)


@pytest.fixture(scope="session")
def compiled_powerplant(powerplant_model):
    return compile_model(powerplant_model, jacobian=True)


@pytest.fixture(scope="session")
def compiled_servo(servo_model):
    return compile_model(servo_model, jacobian=True)
