"""Solver substrate tests: convergence orders, stiff problems, Jacobians,
LSODA switching, resampling, and scipy cross-validation."""

import math

import numpy as np
import pytest
import scipy.integrate as si

from repro.solver import (
    AnalyticJacobian,
    FiniteDifferenceJacobian,
    SolverOptions,
    adams_adaptive,
    bdf_adaptive,
    estimate_spectral_radius,
    hermite_resample,
    lsoda_adaptive,
    rk4_fixed,
    rk45_adaptive,
    solve_ivp,
)
from repro.solver.common import Stats, error_norm, initial_step, validate_tspan


def oscillator(t, y):
    return np.array([y[1], -y[0]])


def decay(t, y):
    return -y


def robertson(t, y):
    return np.array(
        [
            -0.04 * y[0] + 1e4 * y[1] * y[2],
            0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] ** 2,
            3e7 * y[1] ** 2,
        ]
    )


def vdp5(t, y):
    return np.array([y[1], 5 * (1 - y[0] ** 2) * y[1] - y[0]])


class TestCommon:
    def test_error_norm_weighted(self):
        err = np.array([1e-7, 1e-7])
        y = np.array([1.0, 1.0])
        assert error_norm(err, y, y, rtol=1e-6, atol=1e-9) < 1.0
        assert error_norm(err * 100, y, y, rtol=1e-6, atol=1e-9) > 1.0

    def test_validate_tspan(self):
        assert validate_tspan(0.0, 1.0) == 1.0
        assert validate_tspan(1.0, 0.0) == -1.0
        with pytest.raises(ValueError):
            validate_tspan(1.0, 1.0)

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SolverOptions(rtol=0.0)
        with pytest.raises(ValueError):
            SolverOptions(max_step=0.0)
        with pytest.raises(ValueError):
            SolverOptions(max_steps=0)

    def test_initial_step_reasonable(self):
        f0 = oscillator(0.0, np.array([1.0, 0.0]))
        stats = Stats()
        h = initial_step(
            oscillator, 0.0, np.array([1.0, 0.0]), f0, 1.0, 4,
            1e-6, 1e-9, np.inf,
        )
        assert 1e-6 < h < 1.0


class TestRk4Fixed:
    def test_fourth_order_convergence(self):
        errors = []
        for n in (50, 100, 200):
            r = rk4_fixed(decay, (0.0, 1.0), [1.0], num_steps=n)
            errors.append(abs(r.y_final[0] - math.exp(-1.0)))
        rate1 = math.log2(errors[0] / errors[1])
        rate2 = math.log2(errors[1] / errors[2])
        assert 3.7 < rate1 < 4.3
        assert 3.7 < rate2 < 4.3

    def test_step_count(self):
        r = rk4_fixed(decay, (0.0, 1.0), [1.0], num_steps=10)
        assert len(r.ts) == 11
        assert r.stats.nfev == 40

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            rk4_fixed(decay, (0.0, 1.0), [1.0], num_steps=0)


class TestRk45:
    def test_oscillator_accuracy(self):
        opts = SolverOptions(rtol=1e-9, atol=1e-12)
        r = rk45_adaptive(oscillator, (0.0, 10.0), [1.0, 0.0], opts)
        assert r.success
        assert r.y_final[0] == pytest.approx(math.cos(10.0), abs=1e-7)

    def test_tolerance_scaling(self):
        errs = []
        for rtol in (1e-5, 1e-8):
            opts = SolverOptions(rtol=rtol, atol=rtol * 1e-3)
            r = rk45_adaptive(oscillator, (0.0, 10.0), [1.0, 0.0], opts)
            errs.append(abs(r.y_final[0] - math.cos(10.0)))
        assert errs[1] < errs[0] / 10

    def test_backward_integration(self):
        opts = SolverOptions(rtol=1e-8, atol=1e-11)
        r = rk45_adaptive(decay, (1.0, 0.0), [math.exp(-1.0)], opts)
        assert r.success
        assert r.y_final[0] == pytest.approx(1.0, rel=1e-6)

    def test_max_steps_failure(self):
        opts = SolverOptions(rtol=1e-12, atol=1e-14, max_steps=5)
        r = rk45_adaptive(oscillator, (0.0, 100.0), [1.0, 0.0], opts)
        assert not r.success
        assert "maximum step count" in r.message

    def test_max_step_respected(self):
        opts = SolverOptions(rtol=1e-3, atol=1e-6, max_step=0.01)
        r = rk45_adaptive(decay, (0.0, 1.0), [1.0], opts)
        assert np.max(np.diff(r.ts)) <= 0.01 + 1e-12

    def test_first_step_honoured(self):
        opts = SolverOptions(rtol=1e-6, atol=1e-9, first_step=1e-4)
        r = rk45_adaptive(decay, (0.0, 1.0), [1.0], opts)
        assert r.ts[1] - r.ts[0] == pytest.approx(1e-4)


class TestAdams:
    def test_accuracy_tracks_tolerance(self):
        errors = {}
        for rtol in (1e-5, 1e-7, 1e-9):
            opts = SolverOptions(rtol=rtol, atol=rtol * 1e-2)
            r = adams_adaptive(oscillator, (0.0, 10.0), [1.0, 0.0], opts)
            assert r.success
            errors[rtol] = abs(r.y_final[0] - math.cos(10.0))
        assert errors[1e-7] < errors[1e-5]
        assert errors[1e-9] < errors[1e-7]

    def test_order_ramps_up(self):
        from repro.solver.adams import AdamsStepper

        stats = Stats()
        opts = SolverOptions(rtol=1e-8, atol=1e-10)
        stepper = AdamsStepper(
            oscillator, 0.0, np.array([1.0, 0.0]), 1.0, opts, stats
        )
        for _ in range(30):
            assert stepper.step(10.0)
        assert stepper.order >= 3

    def test_efficiency_vs_naive(self):
        # At tight tolerance the multistep method needs far fewer RHS
        # evaluations per step than RK45's 6.
        opts = SolverOptions(rtol=1e-8, atol=1e-10)
        r = adams_adaptive(oscillator, (0.0, 10.0), [1.0, 0.0], opts)
        assert r.stats.nfev / r.stats.naccepted < 3.0

    def test_exponential_decay(self):
        opts = SolverOptions(rtol=1e-9, atol=1e-12)
        r = adams_adaptive(decay, (0.0, 5.0), [1.0], opts)
        assert r.y_final[0] == pytest.approx(math.exp(-5.0), abs=1e-7)


class TestBdf:
    def test_robertson_vs_scipy(self):
        ref = si.solve_ivp(
            robertson, (0.0, 100.0), [1.0, 0.0, 0.0], method="BDF",
            rtol=1e-10, atol=1e-14,
        )
        r = bdf_adaptive(
            robertson, (0.0, 100.0), [1.0, 0.0, 0.0],
            SolverOptions(rtol=1e-7, atol=1e-11),
        )
        assert r.success
        assert np.allclose(r.y_final, ref.y[:, -1], rtol=1e-4, atol=1e-9)

    def test_stiff_efficiency(self):
        # An explicit method would need ~1e6 steps for this span; BDF
        # should need a few hundred.
        r = bdf_adaptive(
            robertson, (0.0, 1000.0), [1.0, 0.0, 0.0],
            SolverOptions(rtol=1e-6, atol=1e-10),
        )
        assert r.success
        assert r.stats.naccepted < 2000

    def test_analytic_jacobian_reduces_nfev(self):
        def jac(t, y):
            return np.array(
                [
                    [-0.04, 1e4 * y[2], 1e4 * y[1]],
                    [0.04, -1e4 * y[2] - 6e7 * y[1], -1e4 * y[1]],
                    [0.0, 6e7 * y[1], 0.0],
                ]
            )

        opts = SolverOptions(rtol=1e-7, atol=1e-11)
        with_fd = bdf_adaptive(robertson, (0.0, 100.0), [1.0, 0.0, 0.0], opts)
        with_an = bdf_adaptive(
            robertson, (0.0, 100.0), [1.0, 0.0, 0.0], opts,
            jac=AnalyticJacobian(jac),
        )
        assert with_an.success and with_fd.success
        assert with_an.stats.nfev < with_fd.stats.nfev
        assert np.allclose(with_an.y_final, with_fd.y_final, rtol=1e-4)

    def test_linear_problem_exact_order(self):
        # y' = -y with loose Newton: still accurate to tolerance.
        r = bdf_adaptive(
            decay, (0.0, 2.0), [1.0], SolverOptions(rtol=1e-8, atol=1e-11)
        )
        assert r.y_final[0] == pytest.approx(math.exp(-2.0), abs=1e-6)

    def test_order_increases(self):
        from repro.solver.bdf import BdfStepper

        stats = Stats()
        stepper = BdfStepper(
            decay, 0.0, np.array([1.0]), 1.0,
            SolverOptions(rtol=1e-8, atol=1e-11), stats,
        )
        for _ in range(50):
            assert stepper.step(10.0)
        assert stepper.order >= 2


class TestJacobianProviders:
    def test_finite_difference_accuracy(self):
        fd = FiniteDifferenceJacobian(vdp5, 2)
        y = np.array([1.0, 2.0])
        J = fd(0.0, y, vdp5(0.0, y))
        exact = np.array(
            [[0.0, 1.0], [-10.0 * y[0] * y[1] - 1.0, 5 * (1 - y[0] ** 2)]]
        )
        assert np.allclose(J, exact, rtol=1e-5, atol=1e-5)
        assert fd.rhs_evals_per_call == 2

    def test_analytic_passthrough(self):
        jac = AnalyticJacobian(lambda t, y: np.eye(2) * 3.0)
        J = jac(0.0, np.zeros(2), None)
        assert np.allclose(J, 3 * np.eye(2))
        assert jac.nevals == 1


class TestLsoda:
    def test_spectral_radius_estimate(self):
        # Linear system with eigenvalues -1, -1000.
        A = np.diag([-1.0, -1000.0])

        def f(t, y):
            return A @ y

        y = np.array([1.0, 1.0])
        rho = estimate_spectral_radius(f, 0.0, y, f(0.0, y))
        assert rho == pytest.approx(1000.0, rel=0.2)

    def test_switches_to_bdf_on_robertson(self):
        r = lsoda_adaptive(
            robertson, (0.0, 100.0), [1.0, 0.0, 0.0],
            SolverOptions(rtol=1e-6, atol=1e-10),
        )
        assert r.success
        assert r.stats.method_switches >= 1
        assert "bdf" in r.method_log

    def test_stays_adams_on_nonstiff(self):
        r = lsoda_adaptive(
            oscillator, (0.0, 20.0), [1.0, 0.0],
            SolverOptions(rtol=1e-7, atol=1e-10),
        )
        assert r.success
        assert set(r.method_log) == {"adams"}

    def test_accuracy_on_vdp(self):
        ref = si.solve_ivp(vdp5, (0.0, 20.0), [2.0, 0.0], method="LSODA",
                           rtol=1e-10, atol=1e-12)
        r = lsoda_adaptive(
            vdp5, (0.0, 20.0), [2.0, 0.0],
            SolverOptions(rtol=1e-7, atol=1e-9),
        )
        assert r.success
        assert np.allclose(r.y_final, ref.y[:, -1], rtol=1e-3, atol=1e-4)


class TestSolveIvp:
    def test_method_dispatch(self):
        for method in ("lsoda", "adams", "bdf", "rk45", "rk4"):
            r = solve_ivp(decay, (0.0, 1.0), [1.0], method=method,
                          rtol=1e-7, atol=1e-10)
            assert r.success, method
            assert r.y_final[0] == pytest.approx(math.exp(-1.0), abs=1e-5)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            solve_ivp(decay, (0.0, 1.0), [1.0], method="euler")

    def test_t_eval_resampling(self):
        t_eval = np.linspace(0.0, 10.0, 23)
        r = solve_ivp(oscillator, (0.0, 10.0), [1.0, 0.0], method="rk45",
                      rtol=1e-9, atol=1e-12, t_eval=t_eval)
        assert r.ts == pytest.approx(t_eval)
        assert np.allclose(r.ys[:, 0], np.cos(t_eval), atol=1e-6)

    def test_t_eval_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            solve_ivp(decay, (0.0, 1.0), [1.0], t_eval=[2.0])

    def test_callable_jac_accepted(self):
        r = solve_ivp(
            decay, (0.0, 1.0), [1.0], method="bdf",
            jac=lambda t, y: np.array([[-1.0]]),
            rtol=1e-8, atol=1e-11,
        )
        assert r.success

    def test_hermite_resample_interior_accuracy(self):
        r = solve_ivp(oscillator, (0.0, 6.0), [1.0, 0.0], method="rk45",
                      rtol=1e-10, atol=1e-13)
        mid = (r.ts[:-1] + r.ts[1:]) / 2
        resampled = hermite_resample(r, oscillator, mid[:20])
        assert np.allclose(resampled.ys[:, 0], np.cos(mid[:20]), atol=1e-7)
