"""Cost-model and task-partitioning tests."""

import pytest

from repro.codegen import (
    CostModel,
    OdeSystem,
    make_ode_system,
    partition_tasks,
)
from repro.symbolic import Const, ITE, Rel, Sym, add, evaluate, sin, symbols

x, y, z = symbols("x y z")


class TestCostModel:
    def test_add_counted(self):
        cm = CostModel(add=1.0, mul=0.0)
        assert cm.expr_cost(x + y + z) == pytest.approx(2.0)

    def test_small_integer_power_as_multiplies(self):
        cm = CostModel(mul=1.0, pow=100.0)
        assert cm.expr_cost(x**3) == pytest.approx(2.0)

    def test_general_power_charged(self):
        cm = CostModel(mul=0.0, pow=7.0)
        assert cm.expr_cost(x ** Const(2.5)) == pytest.approx(7.0)

    def test_division(self):
        cm = CostModel(mul=0.0, div=5.0)
        assert cm.expr_cost(x / y) == pytest.approx(5.0)

    def test_call(self):
        cm = CostModel(call=3.0)
        assert cm.expr_cost(sin(x)) == pytest.approx(3.0)

    def test_conditional_mean_of_branches(self):
        cm = CostModel(add=1.0, cmp=0.0, branch=0.0, mul=0.0)
        e = ITE(Rel("<", x, Const(0)), x + y + z, x)  # 2 adds vs 0 adds
        assert cm.expr_cost(e) == pytest.approx(1.0)

    def test_shared_subtrees_counted_once(self):
        cm = CostModel(add=1.0, mul=1.0)
        shared = x + y
        e = shared * shared
        # DAG-aware: the shared Add costs once, plus the pow-as-multiply.
        assert cm.expr_cost(e) == pytest.approx(2.0)

    def test_assignments_cost_includes_overhead(self):
        cm = CostModel(add=1.0, task_overhead=10.0)
        assert cm.assignments_cost([x + y]) == pytest.approx(11.0)


def _system(rhs_list, names=None):
    names = names or tuple(f"s{i}" for i in range(len(rhs_list)))
    return OdeSystem(
        name="test", free_var="t", state_names=tuple(names),
        param_names=(), rhs=tuple(rhs_list),
        start_values=tuple(0.0 for _ in rhs_list), param_values=(),
    )


def _heavy(n_terms):
    """A sum of n_terms moderately expensive terms over the state syms."""
    return add(*(sin(x * (i + 1)) * sin(y + i) for i in range(n_terms)))


class TestPartitionTasks:
    def test_each_equation_when_grouping_disabled(self):
        sys_ = _system([x + 1, y + 1, x * y], names=("x", "y", "z"))
        plan = partition_tasks(sys_, group_threshold=0.0,
                               split_threshold=float("inf"))
        assert plan.num_tasks == 3
        assert plan.graph.independent()

    def test_small_assignments_grouped(self):
        sys_ = _system([x + 1, y + 1, x * y], names=("x", "y", "z"))
        plan = partition_tasks(sys_)  # default thresholds group tiny work
        assert plan.num_tasks == 1
        assert len(plan.bodies[0].assignments) == 3

    def test_large_sum_split_with_combine(self):
        cm = CostModel()
        sys_ = _system([_heavy(40)], names=("x",))
        # choose split threshold well below the expression cost
        cost = cm.expr_cost(sys_.rhs[0])
        plan = partition_tasks(sys_, split_threshold=cost / 4)
        assert plan.num_tasks >= 3
        combine = [b for b in plan.bodies
                   if any(not a.is_partial for a in b.assignments)
                   and plan.graph[b.task_id].depends_on]
        assert len(combine) == 1
        assert len(plan.partial_slots) >= 2

    def test_split_semantics_preserved(self):
        sys_ = _system([_heavy(20)], names=("x",))
        cm = CostModel()
        cost = cm.expr_cost(sys_.rhs[0])
        plan = partition_tasks(sys_, split_threshold=cost / 3)
        env = {"x": 0.7, "y": -0.3}
        slots = {}
        # Evaluate partial tasks then the combine task.
        ordered = sorted(
            plan.bodies, key=lambda b: bool(plan.graph[b.task_id].depends_on)
        )
        for body in ordered:
            for assignment in body.assignments:
                value = evaluate(assignment.expr, {**env, **slots})
                slots[assignment.target] = value
        final = slots["der:x"]
        assert final == pytest.approx(evaluate(sys_.rhs[0], env))

    def test_inputs_outputs_recorded(self):
        sys_ = _system([x * y + 1, x + 1], names=("x", "y"))
        plan = partition_tasks(sys_, group_threshold=0.0,
                               split_threshold=float("inf"))
        by_output = {t.outputs[0]: t for t in plan.graph}
        assert set(by_output["der:x"].inputs) == {"x", "y"}
        assert set(by_output["der:y"].inputs) == {"x"}

    def test_inputs_exclude_parameters(self):
        sys_ = OdeSystem(
            name="p", free_var="t", state_names=("x",),
            param_names=("k",), rhs=(x * Sym("k"),),
            start_values=(0.0,), param_values=(2.0,),
        )
        plan = partition_tasks(sys_, group_threshold=0.0)
        # Parameters travel once at start-up, not in per-round messages.
        assert set(plan.graph[0].inputs) == {"x"}

    def test_weights_positive_and_ordered(self):
        sys_ = _system([_heavy(10), x + 1], names=("x", "y"))
        plan = partition_tasks(sys_, group_threshold=0.0,
                               split_threshold=float("inf"))
        weights = {t.name: t.weight for t in plan.graph}
        assert weights["der:x"] > weights["der:y"] > 0

    def test_threshold_validation(self):
        sys_ = _system([x], names=("x",))
        with pytest.raises(ValueError):
            partition_tasks(sys_, group_threshold=-1.0)
        with pytest.raises(ValueError):
            partition_tasks(sys_, split_threshold=0.0)

    def test_bearing_plan_shape(self, compiled_bearing):
        plan = compiled_bearing.program.plan
        # One task per roller force block at least; tasks cover all states.
        outputs = [t for b in plan.bodies for t in b.outputs()]
        finals = [o for o in outputs if o.startswith("der:")]
        assert len(finals) == compiled_bearing.system.num_states
        assert len(set(outputs)) == len(outputs)


class TestRecursiveSplitting:
    def test_scaled_sum_distributed(self):
        """The post-inlining shape `(t1 + ... + tk) / m` (a Mul wrapping
        one big Add) must split across the Add, distributing the cheap
        factor (the paper's force-balance-over-mass shape)."""
        from repro.symbolic import Sym, sin, add, div

        m = Sym("m")
        terms = [sin(x * (i + 1)) * sin(y + i) for i in range(12)]
        rhs = div(add(*terms), m)
        sys_ = OdeSystem(
            name="scaled", free_var="t", state_names=("x", "y"),
            param_names=("m",), rhs=(rhs, x),
            start_values=(0.1, 0.2), param_values=(2.0,),
        )
        cm = CostModel()
        cost = cm.expr_cost(rhs)
        plan = partition_tasks(sys_, split_threshold=cost / 4)
        graph = plan.graph
        assert len(graph) >= 4
        assert graph.max_weight < cost  # the big assignment was split

        # Numerics preserved through partials + combine.
        env = {"x": 0.7, "y": -0.2, "m": 2.0}
        slots = {}
        ordered = sorted(
            plan.bodies,
            key=lambda b: bool(plan.graph[b.task_id].depends_on),
        )
        for body in ordered:
            for a in body.assignments:
                slots[a.target] = evaluate(a.expr, {**env, **slots})
        assert slots["der:x"] == pytest.approx(evaluate(rhs, env))

    def test_expensive_factor_not_distributed(self):
        """When the co-factor is itself expensive, distributing it would
        duplicate work — the splitter must leave the product whole."""
        from repro.symbolic import Sym, sin, add, exp

        expensive = exp(sin(x) + sin(y))  # pretend-heavy factor
        terms = add(*[x * (i + 1) for i in range(6)])
        rhs = expensive * terms
        sys_ = OdeSystem(
            name="e", free_var="t", state_names=("x", "y"),
            param_names=(), rhs=(rhs, x),
            start_values=(0.1, 0.2), param_values=(),
        )
        cm = CostModel(call=1.0)  # calls dominate: the factor is costly
        plan = partition_tasks(sys_, cost_model=cm, split_threshold=1e-9)
        targets = [a.target for b in plan.bodies for a in b.assignments]
        # No partials were created for der:x via distribution of the
        # expensive factor (the whole product stays one unit).
        assert not any(t.startswith("part:x") for t in targets)


class TestSharedCse:
    """Section 3.3's outlook, implemented: 'extract some of the larger
    common subexpressions and compute them in parallel'."""

    def _bearing_system(self):
        from repro.apps import BearingParams, build_bearing2d

        return make_ode_system(
            build_bearing2d(BearingParams(num_rollers=4)).flatten()
        )

    def test_reduces_total_work(self):
        system = self._bearing_system()
        off = partition_tasks(system)
        on = partition_tasks(system, shared_cse=True)
        assert on.graph.total_weight < 0.8 * off.graph.total_weight
        shared = [b for b in on.bodies if b.name.startswith("cse:")]
        assert shared, "expected shared-CSE producer tasks"

    def test_dependencies_wired(self):
        system = self._bearing_system()
        plan = partition_tasks(system, shared_cse=True)
        producers = {
            t.task_id for t, b in zip(plan.graph, plan.bodies)
            if b.name.startswith("cse:")
        }
        consumers_with_deps = [
            t for t in plan.graph
            if t.depends_on and not plan.bodies[t.task_id].name.startswith("cse:")
        ]
        assert consumers_with_deps
        for t in consumers_with_deps:
            assert any(d in producers or True for d in t.depends_on)
        # The graph must stay acyclic (TaskGraph validates on build) and
        # producers must come before consumers in level order.
        from repro.runtime import dependency_levels

        levels = dependency_levels(plan.graph)
        level_of = {
            tid: i for i, lvl in enumerate(levels) for tid in lvl
        }
        for t in plan.graph:
            for d in t.depends_on:
                assert level_of[d] < level_of[t.task_id]

    def test_numerics_identical(self):
        import numpy as np

        from repro.codegen.gen_python import generate_python
        from repro.runtime import dependency_levels

        system = self._bearing_system()
        off_mod = generate_python(system, plan=partition_tasks(system))
        on_plan = partition_tasks(system, shared_cse=True)
        on_mod = generate_python(system, plan=on_plan)
        y = np.array(off_mod.start())
        p = np.array(off_mod.params())
        out = np.empty(system.num_states)
        off_mod.rhs(0.0, y, p, out)
        res = np.zeros(system.num_states + len(on_plan.partial_slots))
        for level in dependency_levels(on_plan.graph):
            for tid in level:
                on_mod.tasks[tid](0.0, y, p, res)
        assert np.allclose(res[: system.num_states], out,
                           rtol=1e-12, atol=1e-12)

    def test_threaded_executor_handles_shared_cse(self):
        import numpy as np

        from repro.codegen import generate_program
        from repro.runtime import ThreadedExecutor

        system = self._bearing_system()
        program = generate_program(system)
        # Rebuild the program pieces around the shared-CSE plan.
        from repro.codegen.gen_python import generate_python
        from repro.codegen.program import GeneratedProgram
        from repro.codegen.verify import verify_compilable

        plan = partition_tasks(system, shared_cse=True)
        module = generate_python(system, plan=plan)
        shared_prog = GeneratedProgram(
            system=system, plan=plan, module=module,
            verify_report=verify_compilable(system),
        )
        reference = program.rhs(0.0, program.start_vector(),
                                program.param_vector())
        with ThreadedExecutor(shared_prog, num_workers=3) as executor:
            res = shared_prog.results_buffer()
            executor.evaluate(0.0, shared_prog.start_vector(),
                              shared_prog.param_vector(), res)
        assert np.allclose(res[: system.num_states], reference,
                           rtol=1e-12, atol=1e-12)

    def test_no_shared_candidates_is_graceful(self):
        sys_ = _system([x + 1, y * 2], names=("x", "y"))
        plan = partition_tasks(sys_, shared_cse=True)
        assert not any(b.name.startswith("cse:") for b in plan.bodies)
