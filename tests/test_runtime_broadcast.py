"""Tests of the broadcast (shared-address-space) machine mode and the
large-MIMD preset used by the section-6 extrapolation."""

import dataclasses

import pytest

from repro.runtime import (
    LARGE_SHARED_MIMD,
    PAPER_COMPUTE_SPEED,
    PARSYTEC_GCPP,
    SPARCCENTER_2000,
    simulate_round,
    speedup_curve,
)
from repro.schedule import Task, TaskGraph, lpt_schedule


def _graph(weights):
    return TaskGraph(
        [Task(i, f"t{i}", (f"der:s{i}",), ("s0",), w)
         for i, w in enumerate(weights)]
    )


class TestBroadcastMode:
    def test_preset_flags(self):
        assert LARGE_SHARED_MIMD.broadcast
        assert not SPARCCENTER_2000.broadcast
        assert not PARSYTEC_GCPP.broadcast
        assert 0 < PAPER_COMPUTE_SPEED < 1

    def test_broadcast_beats_serialised_sends_at_scale(self):
        g = _graph([1e-4] * 256)
        serialised = dataclasses.replace(LARGE_SHARED_MIMD, broadcast=False)
        n = 256
        w = 64
        t_b = simulate_round(
            g, lpt_schedule(g, w), LARGE_SHARED_MIMD, n
        ).round_time
        t_s = simulate_round(g, lpt_schedule(g, w), serialised, n).round_time
        assert t_b < t_s

    def test_broadcast_equal_at_one_worker(self):
        g = _graph([1e-4] * 8)
        serialised = dataclasses.replace(LARGE_SHARED_MIMD, broadcast=False)
        t_b = simulate_round(g, lpt_schedule(g, 1), LARGE_SHARED_MIMD, 8)
        t_s = simulate_round(g, lpt_schedule(g, 1), serialised, 8)
        assert t_b.round_time == pytest.approx(t_s.round_time)

    def test_barrier_grows_logarithmically(self):
        g = _graph([1e-3] * 512)
        times = {}
        for w in (4, 64):
            times[w] = simulate_round(
                g, lpt_schedule(g, w), LARGE_SHARED_MIMD, 512
            )
        # Gather overhead (writes + barrier) grows slowly with workers.
        assert times[64].gather_time < 4 * times[4].gather_time

    def test_scalability_regime(self):
        """On the broadcast machine, equal fine-grain tasks keep scaling
        far past the point where the serialised-send machine saturates."""
        machine = dataclasses.replace(
            LARGE_SHARED_MIMD, compute_speed=PAPER_COMPUTE_SPEED
        )
        g = _graph([2e-5] * 1024)
        curve = dict(speedup_curve(g, machine, 1024, (1, 16, 128, 256)))
        assert curve[128] > 40 * curve[1]
        assert curve[256] >= curve[128] * 0.9
