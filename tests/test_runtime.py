"""Runtime tests: machine models, message accounting, the discrete-event
simulator, real executors, and the parallel-RHS facades."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    IDEAL_MACHINE,
    MachineModel,
    PARSYTEC_GCPP,
    SPARCCENTER_2000,
    ParallelRHS,
    SerialExecutor,
    ThreadedExecutor,
    VirtualTimeParallelRHS,
    broadcast_bytes,
    dependency_levels,
    gather_bytes,
    simulate_round,
    simulate_run,
    speedup_curve,
    worker_message_bytes,
)
from repro.schedule import SemiDynamicScheduler, Task, TaskGraph, lpt_schedule


def _graph(weights, deps=None):
    deps = deps or {}
    return TaskGraph(
        [
            Task(i, f"t{i}", (f"der:s{i}",), ("s0",), w,
                 depends_on=tuple(deps.get(i, ())))
            for i, w in enumerate(weights)
        ]
    )


class TestMachineModel:
    def test_message_time(self):
        m = MachineModel("m", 4, message_latency=1e-5, byte_cost=1e-7)
        assert m.message_time(1) == pytest.approx(1e-5)
        assert m.message_time(101) == pytest.approx(1e-5 + 100e-7)
        assert m.message_time(0) == 0.0

    def test_contention_below_knee(self):
        assert SPARCCENTER_2000.contention_factor(7) == 1.0
        assert SPARCCENTER_2000.contention_factor(10) > 1.0

    def test_no_knee(self):
        assert PARSYTEC_GCPP.contention_factor(60) == 1.0

    def test_paper_latencies(self):
        # "A message of 1 byte takes 4 us ... and 140 us" (section 4).
        assert SPARCCENTER_2000.message_time(1) == pytest.approx(4e-6)
        assert PARSYTEC_GCPP.message_time(1) == pytest.approx(140e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineModel("m", 0, 0.0, 0.0)
        with pytest.raises(ValueError):
            MachineModel("m", 1, -1.0, 0.0)
        with pytest.raises(ValueError):
            MachineModel("m", 1, 0.0, 0.0, compute_speed=0.0)


class TestMessages:
    def test_broadcast_full_state(self):
        assert broadcast_bytes(10) == 8 * 11  # states + t

    def test_broadcast_needed_only(self):
        assert broadcast_bytes(10, full_state=False, needed=3) == 8 * 4

    def test_worker_bytes(self):
        g = _graph([1.0, 1.0, 1.0])
        s = lpt_schedule(g, 2)
        down, up = worker_message_bytes(g, s, 0, num_states=3)
        assert down == 8 * 4
        assert up == 8 * len(s.tasks_of(0))

    def test_gather_totals(self):
        g = _graph([1.0, 1.0])
        s = lpt_schedule(g, 2)
        stats = gather_bytes(g, s, num_states=2)
        assert stats.num_messages == 4  # 2 down + 2 up


class TestSimulateRound:
    def test_single_worker_no_comm(self):
        g = _graph([1.0, 2.0])
        s = lpt_schedule(g, 1)
        b = simulate_round(g, s, PARSYTEC_GCPP, num_states=2)
        assert b.round_time == pytest.approx(3.0)
        assert b.send_time == 0.0

    def test_ideal_machine_perfect_speedup(self):
        g = _graph([1.0] * 8)
        s1 = lpt_schedule(g, 1)
        s8 = lpt_schedule(g, 8)
        t1 = simulate_round(g, s1, IDEAL_MACHINE, 8).round_time
        t8 = simulate_round(g, s8, IDEAL_MACHINE, 8).round_time
        assert t1 / t8 == pytest.approx(8.0)

    def test_latency_hurts_small_tasks(self):
        g = _graph([1e-5] * 8)  # tiny tasks vs 140 us messages
        s = lpt_schedule(g, 4)
        serial = simulate_round(g, lpt_schedule(g, 1), PARSYTEC_GCPP, 8)
        parallel = simulate_round(g, s, PARSYTEC_GCPP, 8)
        assert parallel.round_time > serial.round_time

    def test_compute_speed_scaling(self):
        g = _graph([1.0])
        fast = MachineModel("f", 1, 0.0, 0.0, compute_speed=2.0)
        b = simulate_round(g, lpt_schedule(g, 1), fast, 1)
        assert b.round_time == pytest.approx(0.5)

    def test_task_time_override(self):
        g = _graph([1.0, 1.0])
        s = lpt_schedule(g, 1)
        b = simulate_round(g, s, IDEAL_MACHINE, 2, task_times=[5.0, 5.0])
        assert b.round_time == pytest.approx(10.0)

    def test_wrong_time_count(self):
        g = _graph([1.0])
        with pytest.raises(ValueError):
            simulate_round(g, lpt_schedule(g, 1), IDEAL_MACHINE, 1,
                           task_times=[1.0, 2.0])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(1e-6, 1e-2), min_size=1, max_size=20),
        st.integers(1, 8),
    )
    def test_round_time_bounds_property(self, weights, workers):
        """Simulated round time is at least the compute lower bound and at
        most the fully serial time plus all communication."""
        g = _graph(weights)
        s = lpt_schedule(g, workers)
        b = simulate_round(g, s, SPARCCENTER_2000, len(weights))
        lower = max(max(weights), sum(weights) / workers)
        assert b.round_time >= lower * 0.999 / SPARCCENTER_2000.compute_speed
        total_comm = 2 * workers * SPARCCENTER_2000.message_time(
            8 * (len(weights) + 1)
        )
        upper = (sum(weights) + total_comm) * SPARCCENTER_2000.contention_factor(
            workers
        )
        assert b.round_time <= upper * 1.001 + 1e-12


class TestSimulateRun:
    def test_total_accumulates(self):
        g = _graph([1e-3] * 4)
        report = simulate_run(g, IDEAL_MACHINE, 2, 4, num_rounds=10)
        assert report.num_rounds == 10
        assert report.total_time == pytest.approx(10 * report.round_times[0])

    def test_semidynamic_adapts(self):
        g = _graph([1e-3] * 8)
        scheduler = SemiDynamicScheduler(g, 2, reschedule_every=2,
                                         smoothing=1.0)

        def sampler(r, tid):
            # Task 0 becomes dominant halfway through.
            return 50e-3 if (tid == 0 and r >= 10) else 1e-3

        report = simulate_run(
            g, IDEAL_MACHINE, 2, 8, num_rounds=40,
            task_time_sampler=sampler, scheduler=scheduler,
        )
        assert report.num_reschedules > 0
        # After adaptation, rounds should approach the balanced optimum
        # (task0 alone: 50 ms vs 7 ms on the other worker -> 50 ms round).
        assert report.round_times[-1] == pytest.approx(50e-3, rel=0.05)

    def test_static_vs_dynamic_with_variable_load(self):
        rng = np.random.default_rng(3)
        g = _graph([1e-3] * 12)
        variable = rng.uniform(0.5e-3, 4e-3, size=(60, 12))

        def sampler(r, tid):
            return float(variable[r, tid])

        static = simulate_run(g, IDEAL_MACHINE, 3, 12, 60,
                              task_time_sampler=sampler)
        dynamic = simulate_run(
            g, IDEAL_MACHINE, 3, 12, 60, task_time_sampler=sampler,
            scheduler=SemiDynamicScheduler(g, 3, reschedule_every=1,
                                           smoothing=1.0),
        )
        # Dynamic rescheduling should not be (much) worse.
        assert dynamic.total_time <= static.total_time * 1.10

    def test_validation(self):
        g = _graph([1.0])
        with pytest.raises(ValueError):
            simulate_run(g, IDEAL_MACHINE, 1, 1, num_rounds=0)


class TestSpeedupCurve:
    def test_shared_memory_shape(self):
        # 64 equal 100-us tasks on the low-latency shared-memory machine:
        # near-linear speedup at small counts, knee past 7 workers.
        g = _graph([1e-4] * 64)
        curve = dict(speedup_curve(g, SPARCCENTER_2000, 64, range(1, 17)))
        assert curve[4] > 3.0 * curve[1]
        assert curve[7] > 5.0 * curve[1]
        gain_after_knee = curve[12] / curve[8]
        assert gain_after_knee < 1.3

    def test_distributed_memory_peak(self):
        # Small tasks + 140 us latency: throughput peaks then declines.
        g = _graph([2e-4] * 64)
        curve = speedup_curve(g, PARSYTEC_GCPP, 64, range(1, 17))
        rates = [r for _, r in curve]
        peak = rates.index(max(rates)) + 1
        assert 2 <= peak <= 12
        assert rates[-1] < max(rates)

    def test_invalid_worker_count(self):
        g = _graph([1.0])
        with pytest.raises(ValueError):
            speedup_curve(g, IDEAL_MACHINE, 1, [0])


class TestExecutors:
    def test_dependency_levels(self):
        g = _graph([1.0, 1.0, 1.0], deps={2: [0, 1]})
        levels = dependency_levels(g)
        assert levels == [[0, 1], [2]]

    def test_serial_executor_matches_rhs(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        executor = SerialExecutor(program)
        y = program.start_vector()
        p = program.param_vector()
        res = program.results_buffer()
        executor.evaluate(0.0, y, p, res)
        assert np.allclose(res[: program.num_states], program.rhs(0.0, y, p))
        assert executor.last_task_times.sum() > 0

    def test_threaded_executor_matches_serial(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        serial = program.rhs(0.0, program.start_vector(),
                             program.param_vector())
        with ThreadedExecutor(program, num_workers=3) as executor:
            res = program.results_buffer()
            executor.evaluate(0.0, program.start_vector(),
                              program.param_vector(), res)
            assert np.allclose(res[: program.num_states], serial)

    def test_threaded_executor_many_rounds(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        y = program.start_vector()
        p = program.param_vector()
        expected = program.rhs(0.0, y, p)
        with ThreadedExecutor(program, num_workers=2) as executor:
            for _ in range(20):
                res = program.results_buffer()
                executor.evaluate(0.0, y, p, res)
                assert np.allclose(res[: program.num_states], expected)

    def test_threaded_executor_schedule_mismatch(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        schedule = lpt_schedule(program.task_graph, 5)
        with ThreadedExecutor(program, num_workers=2) as executor:
            with pytest.raises(ValueError):
                executor.evaluate(
                    0.0, program.start_vector(), program.param_vector(),
                    program.results_buffer(), schedule,
                )

    def test_closed_executor_rejects_work(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        executor = ThreadedExecutor(program, num_workers=1)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.evaluate(0.0, program.start_vector(),
                              program.param_vector(),
                              program.results_buffer())


class TestParallelRhsFacades:
    def test_parallel_rhs_matches_serial(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        f = ParallelRHS(program)
        y = program.start_vector()
        assert np.allclose(f(0.0, y), program.rhs(0.0, y))
        assert f.ncalls == 1

    def test_virtual_time_accumulates(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        f = VirtualTimeParallelRHS(program, SPARCCENTER_2000, num_workers=4)
        y = program.start_vector()
        f(0.0, y)
        f(0.0, y)
        assert f.virtual_time > 0
        assert f.rhs_calls_per_second > 0
        assert f.ncalls == 2

    def test_virtual_time_fewer_workers_slower(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        y = program.start_vector()
        times = {}
        for w in (1, 4):
            f = VirtualTimeParallelRHS(program, IDEAL_MACHINE, num_workers=w)
            f(0.0, y)
            times[w] = f.virtual_time
        assert times[4] < times[1]

    def test_measured_time_source(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        f = VirtualTimeParallelRHS(
            program, SPARCCENTER_2000, num_workers=2, time_source="measured"
        )
        f(0.0, program.start_vector())
        assert f.virtual_time > 0

    def test_bad_time_source(self, compiled_small_bearing):
        with pytest.raises(ValueError):
            VirtualTimeParallelRHS(
                compiled_small_bearing.program, SPARCCENTER_2000, 2,
                time_source="guess",
            )

    def test_feed_measurements_without_scheduler_rejected(
        self, compiled_small_bearing
    ):
        # feed_measurements=True with scheduler=None used to silently
        # drop every measurement and run the static LPT forever; the
        # misconfiguration must fail loudly at construction instead.
        program = compiled_small_bearing.program
        with pytest.raises(ValueError, match="requires a scheduler"):
            ParallelRHS(program, feed_measurements=True)
        # The valid configuration still works and feeds the scheduler.
        scheduler = SemiDynamicScheduler(program.task_graph, 1,
                                         reschedule_every=1)
        f = ParallelRHS(program, scheduler=scheduler,
                        feed_measurements=True)
        f(0.0, program.start_vector())
        assert scheduler.num_reschedules == 1
        f.close()

    def test_measured_virtual_time_without_scheduler_still_works(
        self, compiled_small_bearing
    ):
        # VirtualTimeParallelRHS consumes measured times directly (for
        # the virtual clock); it must not trip the new scheduler guard.
        f = VirtualTimeParallelRHS(
            compiled_small_bearing.program, SPARCCENTER_2000,
            num_workers=2, time_source="measured",
        )
        assert f.feed_measurements is False
        f(0.0, compiled_small_bearing.program.start_vector())
        assert f.virtual_time > 0


class TestExecutorFailureInjection:
    def test_worker_exception_propagates_not_deadlocks(
        self, compiled_small_bearing
    ):
        """A task raising inside a worker must surface in evaluate() —
        never deadlock the supervisor barrier."""
        program = compiled_small_bearing.program
        y = program.start_vector().copy()
        y[:] = np.nan  # NaNs flow through arithmetic...
        bad_y = np.array([object()] * program.num_states, dtype=object)

        with ThreadedExecutor(program, num_workers=2) as executor:
            res = program.results_buffer()
            with pytest.raises(RuntimeError, match="task evaluation failed"):
                # object() inputs blow up inside the generated arithmetic.
                executor.evaluate(0.0, bad_y, program.param_vector(), res)
            # The pool must remain usable afterwards.
            res2 = program.results_buffer()
            executor.evaluate(0.0, program.start_vector(),
                              program.param_vector(), res2)
            expected = program.rhs(0.0, program.start_vector(),
                                   program.param_vector())
            assert np.allclose(res2[: program.num_states], expected)
