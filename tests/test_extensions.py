"""Tests for the extension features: visualization, model reduction,
sparse Jacobian coloring, serialization, and the CLI."""

import json
import math

import numpy as np
import pytest

from repro.analysis import (
    ascii_graph,
    build_dependency_graph,
    partition,
    partition_to_dot,
    reachable_variables,
    reduce_model,
    to_dot,
)
from repro.codegen import generate_program, make_ode_system
from repro.solver import (
    ColoredFiniteDifferenceJacobian,
    FiniteDifferenceJacobian,
    color_columns,
    jacobian_sparsity,
    solve_ivp,
)
from repro.symbolic import Sym, evaluate, sin, symbols
from repro.symbolic.serialize import (
    dumps_expr,
    expr_from_obj,
    expr_to_obj,
    loads_expr,
    system_from_obj,
    system_to_obj,
)

x, y, z = symbols("x y z")


class TestVisualization:
    def test_to_dot_structure(self, oscillator_model):
        var_g, _, _ = build_dependency_graph(oscillator_model.flatten())
        dot = to_dot(var_g)
        assert dot.startswith("digraph")
        assert '"A.x" -> "A.v";' in dot
        assert dot.rstrip().endswith("}")

    def test_partition_to_dot_clusters(self, servo_model):
        part = partition(servo_model.flatten())
        dot = partition_to_dot(part)
        assert dot.count("subgraph cluster_") == part.num_subsystems
        assert "lhead=" in dot  # inter-cluster edges present

    def test_ascii_graph(self, oscillator_model):
        var_g, _, _ = build_dependency_graph(oscillator_model.flatten())
        text = ascii_graph(var_g)
        assert "A.x -> A.v" in text

    def test_dot_escaping(self):
        from repro.analysis.depgraph import DiGraph

        g = DiGraph()
        g.add_edge('we"ird', "ok")
        dot = to_dot(g)
        assert '\\"' in dot


class TestReduction:
    def test_bearing_phi_removed(self, small_bearing_model):
        flat = small_bearing_model.flatten()
        reduced, report = reduce_model(flat, ["Ir.w"])
        assert "Ir.phi" in report.removed
        assert reduced.num_states == flat.num_states - 1
        # Everything else feeds back into the big SCC, so it stays.
        assert len(report.removed) == 1

    def test_reduced_model_still_compiles_and_agrees(
        self, small_bearing_model
    ):
        flat = small_bearing_model.flatten()
        reduced, _ = reduce_model(flat, ["Ir.w"])
        full = generate_program(make_ode_system(flat))
        small = generate_program(make_ode_system(reduced))
        yf = full.start_vector()
        ys = small.start_vector()
        out_full = full.rhs(0.0, yf, full.param_vector())
        out_small = small.rhs(0.0, ys, small.param_vector())
        iw_full = full.system.state_index("Ir.w")
        iw_small = small.system.state_index("Ir.w")
        assert out_full[iw_full] == pytest.approx(out_small[iw_small])

    def test_chain_reduction(self, servo_model):
        flat = servo_model.flatten()
        # Only the reference shaper matters for its own output.
        reduced, report = reduce_model(flat, ["Ref.ref"])
        assert set(reduced.states) == {"Ref.ref"}
        assert "Servo.theta" in report.removed

    def test_reachability(self, servo_model):
        flat = servo_model.flatten()
        keep = reachable_variables(flat, ["Sensor.meas"])
        # The sensor depends on everything upstream.
        assert "Ref.ref" in keep
        assert "Servo.theta" in keep

    def test_unknown_output_rejected(self, servo_model):
        with pytest.raises(KeyError):
            reduce_model(servo_model.flatten(), ["ghost"])

    def test_unused_parameters_pruned(self, oscillator_model):
        flat = oscillator_model.flatten()
        reduced, _ = reduce_model(flat, ["A.x"])
        assert "A.k" in reduced.parameters
        assert "B.k" not in reduced.parameters


class TestSparseJacobian:
    def test_sparsity_pattern(self, compiled_servo):
        pattern = jacobian_sparsity(compiled_servo.system)
        names = compiled_servo.system.state_names
        i_theta = names.index("Servo.theta")
        i_omega = names.index("Servo.omega")
        assert pattern[i_theta, i_omega]  # theta' = omega
        i_ref = names.index("Ref.ref")
        assert not pattern[i_ref, i_theta]  # shaper ignores the servo

    def test_coloring_valid(self):
        rng = np.random.default_rng(3)
        pattern = rng.random((30, 30)) < 0.15
        np.fill_diagonal(pattern, True)
        colors = color_columns(pattern)
        # Columns with a shared row never share a color.
        for a in range(30):
            for b in range(a + 1, 30):
                if colors[a] == colors[b]:
                    assert not np.any(pattern[:, a] & pattern[:, b])

    def test_tridiagonal_needs_three_colors(self):
        n = 50
        pattern = np.zeros((n, n), dtype=bool)
        for i in range(n):
            for j in (i - 1, i, i + 1):
                if 0 <= j < n:
                    pattern[i, j] = True
        colors = color_columns(pattern)
        assert colors.max() + 1 == 3

    def test_colored_matches_dense(self, compiled_powerplant):
        system = compiled_powerplant.system
        f = compiled_powerplant.program.make_rhs()
        colored = ColoredFiniteDifferenceJacobian(f, system)
        dense = FiniteDifferenceJacobian(f, system.num_states)
        y0 = compiled_powerplant.program.start_vector() + 0.01
        f0 = f(0.0, y0)
        J_c = colored(0.0, y0, f0)
        J_d = dense(0.0, y0, f0)
        assert np.allclose(J_c, J_d, rtol=1e-6, atol=1e-8)
        assert colored.num_colors < system.num_states
        assert colored.rhs_evals_per_call == colored.num_colors

    def test_usable_by_bdf(self, compiled_powerplant):
        program = compiled_powerplant.program
        f = program.make_rhs()
        jac = ColoredFiniteDifferenceJacobian(f, compiled_powerplant.system)
        r = solve_ivp(f, (0.0, 100.0), program.start_vector(),
                      method="bdf", rtol=1e-6, atol=1e-9, jac=jac)
        assert r.success


class TestSerialize:
    def test_expr_roundtrip(self):
        e = sin(x * y) + (x + 2) ** 3 / (z + 5)
        rebuilt = loads_expr(dumps_expr(e))
        assert rebuilt == e

    def test_conditional_roundtrip(self):
        from repro.symbolic import if_then_else

        e = if_then_else(x.gt(0), x, -x)
        assert loads_expr(dumps_expr(e)) == e

    def test_der_and_bool_roundtrip(self):
        from repro.symbolic import BoolOp, Der, Rel

        e = BoolOp("and", [Rel("<", x, y), Rel("!=", y, z)])
        assert expr_from_obj(expr_to_obj(e)) == e
        assert expr_from_obj(expr_to_obj(Der(x))) == Der(x)

    def test_system_roundtrip(self, compiled_servo):
        obj = system_to_obj(compiled_servo.system)
        text = json.dumps(obj)
        system = system_from_obj(json.loads(text))
        assert system.state_names == compiled_servo.system.state_names
        assert system.rhs == compiled_servo.system.rhs
        # The reloaded system regenerates identical code.
        program = generate_program(system)
        y0 = program.start_vector()
        expected = compiled_servo.program.rhs(
            0.0, y0, program.param_vector()
        )
        assert np.allclose(
            program.rhs(0.0, y0, program.param_vector()), expected
        )

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            expr_from_obj({"wat": 1})
        with pytest.raises(ValueError):
            expr_from_obj(True)
        with pytest.raises(ValueError):
            expr_from_obj([1, 2])


_CLI_MODEL = """
MODEL cli_t;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
END cli_t;
"""


class TestCli:
    @pytest.fixture()
    def model_file(self, tmp_path):
        path = tmp_path / "model.om"
        path.write_text(_CLI_MODEL)
        return str(path)

    def test_analyze(self, model_file, capsys):
        from repro.cli import main

        assert main(["analyze", model_file]) == 0
        out = capsys.readouterr().out
        assert "model cli_t" in out
        assert "SCC" in out

    def test_simulate_json(self, model_file, capsys):
        from repro.cli import main

        assert main([
            "simulate", model_file, "--t-end", "3.141592653589793",
            "--method", "rk45", "--rtol", "1e-9", "--atol", "1e-12",
            "--json",
        ]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["y"]["A.x"] == pytest.approx(math.cos(2 * math.pi),
                                                    abs=1e-6)

    def test_codegen_to_file(self, model_file, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "rhs.f90"
        assert main([
            "codegen", model_file, "-t", "f90", "-o", str(out_path)
        ]) == 0
        assert "subroutine RHS" in out_path.read_text()

    def test_graph(self, model_file, capsys):
        from repro.cli import main

        assert main(["graph", model_file]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_startfile_roundtrip(self, model_file, tmp_path, capsys):
        from repro.cli import main

        start = tmp_path / "s.start"
        assert main(["startfile", model_file, "-o", str(start)]) == 0
        text = start.read_text().replace("A.x = 1.0", "A.x = 0.25")
        start.write_text(text)
        assert main([
            "simulate", model_file, "--t-end", "3.141592653589793",
            "--method", "rk45", "--rtol", "1e-9", "--atol", "1e-12",
            "--start-file", str(start), "--json",
        ]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["y"]["A.x"] == pytest.approx(0.25, abs=1e-6)

    def test_missing_file_error(self, capsys):
        from repro.cli import main

        assert main(["analyze", "/nonexistent/model.om"]) == 2
        assert "error" in capsys.readouterr().err


class TestCliExportApp:
    def test_export_roundtrips_through_pipeline(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "servo.om"
        assert main(["export-app", "servo", "-o", str(out)]) == 0
        assert main(["analyze", str(out)]) == 0
        text = capsys.readouterr().out
        assert "model servo" in text

    def test_export_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["export-app", "powerplant"]) == 0
        out = capsys.readouterr().out
        assert "MODEL powerplant;" in out
        assert out.count("INHERITS TurbineGroup") == 6

    def test_unknown_app(self, capsys):
        from repro.cli import main

        with __import__("pytest").raises(SystemExit):
            main(["export-app", "nope"])


class TestShippedModelFiles:
    """The exported .om files in examples/models/ must stay in sync with
    the programmatic app builders."""

    @pytest.mark.parametrize("name", ["servo", "powerplant", "bearing2d"])
    def test_file_compiles_and_matches_builder(self, name):
        from pathlib import Path

        from repro.apps import (
            build_bearing2d,
            build_powerplant,
            build_servo,
        )
        from repro.frontend import compile_source

        path = Path(__file__).parent.parent / "examples" / "models" / f"{name}.om"
        compiled = compile_source(path.read_text())
        builders = {
            "servo": build_servo,
            "powerplant": build_powerplant,
            "bearing2d": build_bearing2d,
        }
        reference = make_ode_system(builders[name]().flatten())
        assert compiled.system.state_names == reference.state_names
        assert compiled.system.start_values == pytest.approx(
            reference.start_values
        )
        assert compiled.system.param_values == pytest.approx(
            reference.param_values
        )


class TestCliSharedCse:
    def test_codegen_flag(self, tmp_path, capsys):
        from repro.cli import main

        model = tmp_path / "m.om"
        model.write_text(
            "MODEL m;\n"
            "CLASS C\n"
            "  STATE x := 1.0;\n"
            "  STATE y := 0.0;\n"
            "  EQUATION der(x) == sqrt(x * x + y * y + 1.0)"
            " * sin(x * y) + x;\n"
            "  EQUATION der(y) == sqrt(x * x + y * y + 1.0)"
            " * cos(x * y) - y;\n"
            "END C;\n"
            "INSTANCE I INHERITS C;\n"
            "END m;\n"
        )
        assert main(["codegen", str(model), "-t", "python",
                     "--shared-cse"]) == 0
        out = capsys.readouterr().out
        assert "def RHS" in out


class TestCliHelp:
    def test_all_subcommands_registered(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        # argparse keeps subcommand names in the first positional action
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(a)) and hasattr(a, "choices") and a.choices
        )
        assert set(sub.choices) >= {
            "analyze", "graph", "codegen", "startfile", "export-app",
            "simulate",
        }
