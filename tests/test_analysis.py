"""Dependency-analysis tests: digraph, Tarjan SCC, matching, partitioning,
pipeline simulation — with hypothesis cross-checks against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DiGraph,
    MatchingError,
    build_dependency_graph,
    condensation,
    maximum_matching,
    partition,
    simulate_pipeline,
    strongly_connected_components,
)
from repro.model import Model, ModelClass
from repro.symbolic import Sym


class TestDiGraph:
    def test_basic(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_node("d")
        assert g.num_nodes == 4
        assert g.num_edges == 2
        assert g.successors("a") == ("b",)
        assert g.predecessors("c") == ("b",)
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert "d" in g

    def test_duplicate_edges_collapse(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert g.num_edges == 1

    def test_subgraph(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        sub = g.subgraph({"a", "b"})
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("b", "c")

    def test_reversed(self):
        g = DiGraph()
        g.add_edge("a", "b")
        rev = g.reversed()
        assert rev.has_edge("b", "a")


class TestTarjan:
    def test_single_cycle(self):
        g = DiGraph()
        for u, v in [("a", "b"), ("b", "c"), ("c", "a")]:
            g.add_edge(u, v)
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert set(comps[0]) == {"a", "b", "c"}

    def test_dag_all_singletons(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        comps = strongly_connected_components(g)
        assert len(comps) == 3
        # Reverse topological: sinks first.
        assert comps[0] == ("c",)
        assert comps[-1] == ("a",)

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge("a", "a")
        g.add_node("b")
        comps = strongly_connected_components(g)
        assert len(comps) == 2

    def test_condensation(self):
        g = DiGraph()
        for u, v in [("a", "b"), ("b", "a"), ("b", "c")]:
            g.add_edge(u, v)
        comps = strongly_connected_components(g)
        cond, member = condensation(g, comps)
        assert cond.num_nodes == 2
        assert member["a"] == member["b"]
        assert member["a"] != member["c"]

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 25),
        st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)),
                 max_size=80),
    )
    def test_matches_networkx(self, n, edges):
        g = DiGraph()
        ng = nx.DiGraph()
        for i in range(n):
            g.add_node(i)
            ng.add_node(i)
        for u, v in edges:
            if u < n and v < n:
                g.add_edge(u, v)
                ng.add_edge(u, v)
        mine = {frozenset(c) for c in strongly_connected_components(g)}
        ref = {frozenset(c) for c in nx.strongly_connected_components(ng)}
        assert mine == ref

    def test_deep_graph_no_recursion_limit(self):
        g = DiGraph()
        n = 50_000
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        comps = strongly_connected_components(g)
        assert len(comps) == n


class TestMatching:
    def test_perfect(self):
        match = maximum_matching({"e1": ["x"], "e2": ["x", "y"]})
        assert len(match) == 2
        assert match["e1"] == "x"

    def test_deficient(self):
        match = maximum_matching({"e1": ["x"], "e2": ["x"]})
        assert len(match) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 10),
            st.lists(st.integers(100, 110), max_size=5),
            max_size=10,
        )
    )
    def test_cardinality_matches_networkx(self, adjacency):
        g = nx.Graph()
        left = list(adjacency)
        g.add_nodes_from(left, bipartite=0)
        for l, rs in adjacency.items():
            for r in rs:
                g.add_edge(l, r)
        ref = nx.bipartite.maximum_matching(g, top_nodes=left)
        ref_size = sum(1 for k in ref if k in adjacency)
        mine = maximum_matching(adjacency)
        assert len(mine) == ref_size
        # Validity: matched pairs are edges, rights unique.
        rights = list(mine.values())
        assert len(set(rights)) == len(rights)
        for l, r in mine.items():
            assert r in adjacency[l]


class TestDependencyGraph:
    def test_oscillator_graph(self, oscillator_model):
        var_g, eq_g, assignment = build_dependency_graph(
            oscillator_model.flatten()
        )
        assert var_g.has_edge("A.v", "A.x")  # x' = v: v is a prerequisite
        assert var_g.has_edge("A.x", "A.v")
        assert not var_g.has_edge("A.x", "B.v")
        assert assignment.defining["A.x"] == "A.Kin"

    def test_implicit_equations_matched(self):
        cls = ModelClass("C")
        x = cls.state("x")
        a = cls.algebraic("a")
        cls.ode(x, a)
        cls.equation(a + x, 2 * a - 1)  # implicit in a
        model = Model("m")
        model.instance("I", cls)
        var_g, _eq_g, assignment = build_dependency_graph(model.flatten())
        assert assignment.defining["I.a"].startswith("I.")

    def test_structurally_singular_detected(self):
        cls = ModelClass("C")
        x = cls.state("x")
        a = cls.algebraic("a")
        b = cls.algebraic("b")
        cls.ode(x, a + b)
        # Both implicit equations constrain only `a`; nothing determines
        # `b` -> no perfect matching (structural singularity).
        cls.equation(a * a, 1)
        cls.equation(a * a * a, 2)
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten(check=False)
        with pytest.raises(MatchingError):
            build_dependency_graph(flat)


class TestPartition:
    def test_two_independent_oscillators(self, oscillator_model):
        part = partition(oscillator_model.flatten())
        assert part.num_subsystems == 2
        assert part.num_levels == 1
        sizes = sorted(len(s.variables) for s in part.subsystems)
        assert sizes == [2, 2]

    def test_chain_levels(self, servo_model):
        part = partition(servo_model.flatten())
        assert part.num_levels >= 3
        largest = part.largest()
        assert {"Servo.IPart", "Servo.omega", "Servo.theta"} <= set(
            largest.variables
        )

    def test_topological_property(self, powerplant_model):
        part = partition(powerplant_model.flatten())
        # Every condensation edge goes from a lower to a higher level.
        for sub in part.subsystems:
            for succ in sub.successors:
                assert part.subsystems[succ].level > sub.level

    def test_membership_consistent(self, powerplant_model):
        part = partition(powerplant_model.flatten())
        for sub in part.subsystems:
            for var in sub.variables:
                assert part.membership[var] == sub.index

    def test_summary_text(self, oscillator_model):
        text = partition(oscillator_model.flatten()).summary()
        assert "strongly connected" in text


class TestPipeline:
    def _chain(self):
        cls = ModelClass("Stage")
        x = cls.state("x", start=1.0)
        cls.ode(x, -x)
        model = Model("chain")
        a = model.instance("A", cls)
        drv = ModelClass("Driven")
        drv.state("y")
        b = model.instance("B", drv)
        model.ode(b.sym("y"), a.sym("x") - b.sym("y"))
        return partition(model.flatten())

    def test_steady_state_speedup(self):
        part = self._chain()
        report = simulate_pipeline(part, [1.0, 1.0], num_steps=1000)
        # Two equal stages pipeline to ~2x for long runs.
        assert report.speedup == pytest.approx(2.0, rel=0.01)

    def test_bottleneck_limits(self):
        part = self._chain()
        report = simulate_pipeline(part, [3.0, 1.0], num_steps=1000)
        assert report.speedup == pytest.approx(4.0 / 3.0, rel=0.01)

    def test_latency_reduces_speedup(self):
        part = self._chain()
        fast = simulate_pipeline(part, [1.0, 1.0], 100, comm_latency=0.0)
        slow = simulate_pipeline(part, [1.0, 1.0], 100, comm_latency=0.5)
        assert slow.pipelined_time > fast.pipelined_time

    def test_single_step(self):
        part = self._chain()
        report = simulate_pipeline(part, [1.0, 1.0], num_steps=1)
        assert report.pipelined_time == pytest.approx(2.0)

    def test_validation(self):
        part = self._chain()
        with pytest.raises(ValueError):
            simulate_pipeline(part, [1.0], num_steps=10)
        with pytest.raises(ValueError):
            simulate_pipeline(part, [1.0, 1.0], num_steps=0)
        with pytest.raises(ValueError):
            simulate_pipeline(part, [1.0, -1.0], num_steps=10)
