"""Backend equivalence: the vectorized NumPy module vs the scalar module.

The two back ends are generated from the same task plan and the same CSE
structure, so they must agree to floating-point noise — the tests pin a
1e-12 *relative* tolerance (values on the bearing reach 1e7, so absolute
comparisons would be meaningless).  The bearing cases deliberately
scatter states across the contact switch point so some lanes take the
``where`` true-branch and others the false-branch in the same sweep.

Also here: the hash-consing properties of the interned expression nodes
(structural equality and hashing must survive interning, and a cache
clear must not change semantics).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.apps import BearingParams, build_bearing2d
from repro.frontend import compile_model
from repro.symbolic import (
    Const,
    Sym,
    add,
    intern_cache_clear,
    intern_cache_size,
    mul,
    pow_,
)
from tests.strategies import expressions

REL_TOL = 1e-12


def _assert_close(got: np.ndarray, ref: np.ndarray) -> None:
    """Relative-to-magnitude agreement: |got − ref| ≤ tol · (1 + |ref|)."""
    diff = np.abs(got - ref)
    bound = REL_TOL * (1.0 + np.abs(ref))
    worst = np.max(diff - bound)
    assert worst <= 0.0, f"backends disagree by {np.max(diff):.3e}"


@pytest.fixture(scope="module")
def numpy_servo(servo_model):
    return compile_model(servo_model, jacobian=True, backend="numpy")


@pytest.fixture(scope="module")
def numpy_powerplant(powerplant_model):
    return compile_model(powerplant_model, jacobian=True, backend="numpy")


@pytest.fixture(scope="module")
def numpy_bearing(bearing_model):
    """The paper's 10-roller bearing, both backends, no Jacobian."""
    return compile_model(bearing_model, backend="numpy")


@pytest.fixture(scope="module")
def numpy_small_bearing(small_bearing_model):
    """4-roller bearing with the analytic Jacobian on both backends."""
    return compile_model(small_bearing_model, jacobian=True, backend="numpy")


def _state_batch(program, batch: int, spread: float, seed: int = 0):
    """States scattered around the start vector.

    ``spread`` is large enough on the bearing cases that roller contact
    flips between lanes (and between rollers within a lane), exercising
    both branches of the generated ``where`` selections.
    """
    rng = np.random.default_rng(seed)
    y0 = program.start_vector()
    return y0[None, :] + spread * (
        1.0 + np.abs(y0[None, :])
    ) * rng.standard_normal((batch, y0.size))


CASES = [
    ("numpy_servo", 0.5),
    ("numpy_powerplant", 0.1),
    ("numpy_bearing", 0.3),
    ("numpy_small_bearing", 0.3),
]


@pytest.mark.parametrize("fixture_name,spread", CASES)
def test_rhs_batch_matches_scalar(fixture_name, spread, request):
    program = request.getfixturevalue(fixture_name).program
    Y = _state_batch(program, 32, spread)
    t = 0.125
    got = program.rhs_batch(t, Y)
    for i in range(Y.shape[0]):
        _assert_close(got[i], program.rhs(t, Y[i]))


@pytest.mark.parametrize("fixture_name,spread", CASES)
def test_rhs_batch_unbatched_shape(fixture_name, spread, request):
    """The ``[..., i]`` indexing makes the vector module shape-agnostic."""
    program = request.getfixturevalue(fixture_name).program
    y = _state_batch(program, 1, spread)[0]
    got = program.rhs_batch(0.25, y)
    assert got.shape == y.shape
    _assert_close(got, program.rhs(0.25, y))


@pytest.mark.parametrize("fixture_name,spread", CASES)
def test_tasks_batch_match_scalar(fixture_name, spread, request):
    """Every generated vector task writes what its scalar twin writes —
    state-derivative slots and partial-sum slots alike."""
    program = request.getfixturevalue(fixture_name).program
    vm = program.vector_module
    B = 16
    Y = _state_batch(program, B, spread, seed=1)
    t = 0.5
    p = program.param_vector()
    width = program.num_states + program.num_partials
    res_v = np.zeros((B, width))
    for task_v in vm.tasks_v:
        task_v(t, Y, p, res_v)
    for i in range(B):
        res_s = program.results_buffer()
        for task_id in range(program.num_tasks):
            program.eval_task(task_id, t, Y[i], p, res_s)
        _assert_close(res_v[i], res_s)


@pytest.mark.parametrize(
    "fixture_name",
    ["numpy_servo", "numpy_powerplant", "numpy_small_bearing"],
)
def test_jacobian_batch_matches_scalar(fixture_name, request):
    program = request.getfixturevalue(fixture_name).program
    Y = _state_batch(program, 16, 0.3, seed=2)
    t = 0.75
    jac_b = program.make_jac_batch()
    jac_s = program.make_jac()
    got = jac_b(t, Y)
    assert got.shape == (16, program.num_states, program.num_states)
    for i in range(Y.shape[0]):
        _assert_close(got[i], jac_s(t, Y[i]))


def test_bearing_batch_straddles_contact(numpy_bearing):
    """The batch genuinely exercises both contact branches: perturbing
    roller positions far enough produces different contact patterns in
    different lanes, and each lane still matches its scalar evaluation."""
    program = numpy_bearing.program
    source = program.vector_module.source
    assert "where(" in source  # the contact logic lowered to masks
    Y = _state_batch(program, 64, 0.5, seed=3)
    got = program.rhs_batch(0.0, Y)
    scalar = np.stack([program.rhs(0.0, Y[i]) for i in range(64)])
    _assert_close(got, scalar)
    # Contact forces differ across lanes (the branch pattern is not
    # uniform), otherwise this test wouldn't be testing the masks.
    assert np.std(scalar, axis=0).max() > 0.0


def test_per_trajectory_params_broadcast(numpy_servo):
    """A (batch, m) parameter stack gives every lane its own physics."""
    program = numpy_servo.program
    B = 8
    Y = _state_batch(program, B, 0.2, seed=4)
    base = program.param_vector()
    P = np.tile(base, (B, 1))
    P[:, 0] = np.linspace(0.5, 2.0, B) * (base[0] if base[0] else 1.0)
    got = program.rhs_batch(0.0, Y, p=P)
    for i in range(B):
        _assert_close(got[i], program.rhs(0.0, Y[i], p=P[i]))


def test_rhs_batch_out_and_backend_guards(numpy_servo, compiled_servo):
    program = numpy_servo.program
    Y = _state_batch(program, 4, 0.1)
    out = np.empty_like(Y)
    got = program.rhs_batch(0.0, Y, out=out)
    assert got is out
    assert numpy_servo.program.backend == "numpy"
    assert compiled_servo.program.backend == "python"
    with pytest.raises(ValueError, match="backend='python'"):
        compiled_servo.program.rhs_batch(0.0, Y)
    with pytest.raises(ValueError, match="unknown backend"):
        compile_model(numpy_servo.flat, backend="fortran")


# -- interning (hash-consing) semantics -------------------------------------


class TestInterning:
    def test_equal_constructions_are_identical(self):
        a = add(Sym("x"), mul(Const(2), Sym("y")))
        b = add(Sym("x"), mul(Const(2), Sym("y")))
        assert a is b
        assert a == b and hash(a) == hash(b)

    def test_const_canonicalisation_unifies(self):
        assert Const(2.0) is Const(2)
        assert pow_(Sym("x"), Const(2.0)) is pow_(Sym("x"), Const(2))

    def test_distinct_structures_stay_distinct(self):
        assert Sym("x") is not Sym("y")
        assert add(Sym("x"), Sym("y")) != mul(Sym("x"), Sym("y"))

    @settings(max_examples=60, deadline=None)
    @given(expressions(max_depth=3))
    def test_reconstruction_is_identical_and_equal(self, e):
        """Rebuilding any expression from its own (already canonical)
        arguments through the public builders hits the intern table:
        identity, equality and hash all coincide."""

        def rebuild(node):
            if not node.args:
                return type(node)(node.name) if isinstance(node, Sym) \
                    else type(node)(node.value)
            return node.with_args([rebuild(a) for a in node.args])

        r = rebuild(e)
        assert r is e
        assert r == e and hash(r) == hash(e)

    def test_free_symbols_memoised(self):
        from repro.symbolic.expr import free_symbols

        e = add(Sym("a"), mul(Sym("b"), Const(4)))
        first = free_symbols(e)
        assert first == frozenset({Sym("a"), Sym("b")})
        assert free_symbols(e) is first  # cached on the node

    def test_cache_clear_preserves_semantics(self):
        # The table is snapshotted and restored: clearing drops the
        # identity guarantee for nodes that straddle the clear, and the
        # rest of the session (module-level constants in other test
        # files, session-scoped compiled models) relies on it.
        from repro.symbolic.expr import _INTERN

        snapshot = dict(_INTERN)
        try:
            a = add(Sym("u_clear_test"), Const(3))
            assert intern_cache_size() > 0
            intern_cache_clear()
            b = add(Sym("u_clear_test"), Const(3))
            # New object (the table was dropped) but same structural value.
            assert a is not b
            assert a == b and hash(a) == hash(b)
        finally:
            _INTERN.clear()
            _INTERN.update(snapshot)
