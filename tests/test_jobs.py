"""Job supervision layer: deadlines, retry/backoff, checkpointed retries,
and circuit-breaker tier routing (repro.runtime.jobs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import ArtifactCache
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    JobDeadlineExceeded,
    JobFailure,
    JobManager,
    JobRetryPolicy,
    JobSpec,
    RuntimeEvents,
)
from repro.solver import RecoveryPolicy, solve_ivp

_SRC = """
MODEL jobosc;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
END jobosc;
"""

T_SPAN = (0.0, 2.0)


class FakeClock:
    """Monotonic clock advancing ``tick`` per call (so deadlines fire
    deterministically without real time passing)."""

    def __init__(self, tick: float = 0.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_manager(**kwargs):
    kwargs.setdefault("events", RuntimeEvents())
    kwargs.setdefault("sleep", lambda s: None)
    return JobManager(**kwargs)


def spec_kwargs(compiled_servo, **overrides):
    base = dict(
        program=compiled_servo.program,
        model_hash=compiled_servo.model_hash,
        t_span=T_SPAN,
        retry=JobRetryPolicy(max_retries=2, backoff=0.01, jitter=0.0),
    )
    base.update(overrides)
    return base


class TestJobSpecValidation:
    def test_requires_exactly_one_of_source_program(self, compiled_servo):
        with pytest.raises(ValueError, match="source/program"):
            JobSpec()
        with pytest.raises(ValueError, match="source/program"):
            JobSpec(source=_SRC, program=compiled_servo.program)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            JobSpec(source=_SRC, executor="gpu")

    def test_rejects_bad_deadline_and_workers(self):
        with pytest.raises(ValueError, match="deadline"):
            JobSpec(source=_SRC, deadline=0.0)
        with pytest.raises(ValueError, match="workers"):
            JobSpec(source=_SRC, workers=0)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            JobRetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            JobRetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            JobRetryPolicy(jitter=1.0)


class TestHappyPath:
    def test_serial_job_matches_unsupervised_solve(self, compiled_servo):
        with make_manager() as manager:
            job = manager.submit(JobSpec(**spec_kwargs(compiled_servo)))
        assert job.completed
        assert job.state == "completed"
        assert job.failure is None
        assert len(job.attempts) == 1
        assert job.executor_used == "serial"
        raw = solve_ivp(
            compiled_servo.program.make_rhs(
                compiled_servo.program.param_vector()
            ),
            T_SPAN, compiled_servo.program.start_vector(),
            method="rk45", rtol=1e-6, atol=1e-9,
        )
        np.testing.assert_array_equal(job.result.ys, raw.ys)

    def test_source_job_compiles_through_shared_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        with make_manager(cache=cache) as manager:
            first = manager.submit(JobSpec(source=_SRC, t_span=(0.0, 1.0)))
            second = manager.submit(JobSpec(source=_SRC, t_span=(0.0, 1.0)))
        assert first.completed and second.completed
        assert cache.hits >= 1  # second job reused the artifact
        np.testing.assert_array_equal(first.result.ys, second.result.ys)

    def test_run_returns_result_directly(self, compiled_servo):
        with make_manager() as manager:
            result = manager.run(JobSpec(**spec_kwargs(compiled_servo)))
        assert result.success

    def test_events_trace_the_lifecycle(self, compiled_servo):
        events = RuntimeEvents()
        with make_manager(events=events) as manager:
            manager.submit(JobSpec(**spec_kwargs(compiled_servo)))
        kinds = [e.kind for e in events if e.kind.startswith("job_")]
        assert kinds == ["job_submitted", "job_attempt", "job_completed"]

    def test_summary_counts(self, compiled_servo):
        with make_manager() as manager:
            manager.submit(JobSpec(**spec_kwargs(compiled_servo)))
            assert "1 completed" in manager.summary()


class TestRetryAndFailure:
    def _always_fail_spec(self, compiled_servo, **overrides):
        injector = FaultInjector(
            [FaultSpec(task_id=0, mode="raise", count=-1)]
        )
        return JobSpec(**spec_kwargs(
            compiled_servo, fault_injector=injector, **overrides
        ))

    def test_submit_never_raises_run_does(self, compiled_servo):
        with make_manager() as manager:
            job = manager.submit(self._always_fail_spec(compiled_servo))
            assert job.state == "failed"
            with pytest.raises(JobFailure):
                job.raise_for_failure()
            with pytest.raises(JobFailure):
                manager.run(self._always_fail_spec(compiled_servo))

    def test_failure_is_structured(self, compiled_servo):
        with make_manager() as manager:
            job = manager.submit(self._always_fail_spec(compiled_servo))
        failure = job.failure
        assert failure.kind == "runtime"
        assert failure.attempts == 3  # initial + max_retries=2
        assert failure.job_id == job.job_id
        assert "InjectedFault" in failure.reason
        assert len(job.attempts) == 3
        assert all(a.outcome == "failed" for a in job.attempts)

    def test_zero_retries_fails_after_one_attempt(self, compiled_servo):
        spec = self._always_fail_spec(
            compiled_servo, retry=JobRetryPolicy(max_retries=0),
        )
        with make_manager() as manager:
            job = manager.submit(spec)
        assert job.failure.attempts == 1

    def test_compile_failure_is_classified(self):
        with make_manager() as manager:
            job = manager.submit(JobSpec(
                source=(
                    "MODEL broken;\n"
                    "CLASS C\n"
                    "  STATE x := 1.0;\n"
                    "  EQUATION Eq[1] := der(x) == y_undefined;\n"
                    "END C;\n"
                    "INSTANCE A INHERITS C;\n"
                    "END broken;\n"
                ),
                retry=JobRetryPolicy(max_retries=0),
            ))
        assert job.state == "failed"
        assert job.failure.kind == "compile"

    def test_backoff_delays_are_deterministic_per_job(self, compiled_servo):
        def collect_delays():
            slept = []
            events = RuntimeEvents()
            with make_manager(events=events,
                              sleep=slept.append) as manager:
                manager.submit(JobSpec(**spec_kwargs(
                    compiled_servo,
                    fault_injector=FaultInjector(
                        [FaultSpec(task_id=0, mode="raise", count=-1)]
                    ),
                    retry=JobRetryPolicy(
                        max_retries=2, backoff=0.05, backoff_factor=2.0,
                        jitter=0.25,
                    ),
                    seed=42,
                )))
            assert events.count("job_retry") == 2
            return slept

        first, second = collect_delays(), collect_delays()
        assert first == second  # jitter seeded from (seed, job_id)
        assert len(first) == 2
        # exponential envelope: base 0.05 then 0.1, each within ±25%
        assert 0.05 * 0.75 <= first[0] <= 0.05 * 1.25
        assert 0.10 * 0.75 <= first[1] <= 0.10 * 1.25

    def test_retry_resumes_from_checkpoint_bit_identically(
        self, compiled_servo, tmp_path
    ):
        # Reference: unsupervised, fault-free run.
        ref = solve_ivp(
            compiled_servo.program.make_rhs(
                compiled_servo.program.param_vector()
            ),
            T_SPAN, compiled_servo.program.start_vector(),
            method="rk45", rtol=1e-6, atol=1e-9,
        )
        # One mid-run crash; the retry must resume from the newest
        # checkpoint and retrace the remaining steps exactly.
        injector = FaultInjector(
            [FaultSpec(task_id=0, mode="raise", round_index=200)]
        )
        events = RuntimeEvents()
        with make_manager(events=events) as manager:
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo,
                fault_injector=injector,
                checkpoint=tmp_path / "job.ckpt",
                checkpoint_every=10,
            )))
        assert job.completed
        assert len(job.attempts) == 2
        assert job.attempts[1].resumed_from_t is not None
        assert job.attempts[1].resumed_from_t > 0.0
        assert events.count("checkpoint_resumed") == 1
        np.testing.assert_array_equal(job.result.ys[-1], ref.ys[-1])
        # The resumed trajectory covers [t_resume, t1] and must retrace
        # the reference's accepted steps over that window exactly.
        start = int(np.searchsorted(ref.ts, job.result.ts[0]))
        np.testing.assert_array_equal(job.result.ts, ref.ts[start:])
        np.testing.assert_array_equal(job.result.ys, ref.ys[start:])

    def test_unreadable_resume_spec_fails_cleanly(self, compiled_servo,
                                                  tmp_path):
        missing = tmp_path / "nope.ckpt"
        with make_manager() as manager:
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, resume=missing,
            )))
        assert job.state == "failed"
        assert job.failure.kind == "runtime"
        assert "cannot resume" in job.failure.reason


class TestDeadline:
    def test_deadline_mid_solve_is_terminal_not_retried(self,
                                                        compiled_servo):
        # Each clock() call advances 0.01s: a 0.5s budget dies mid-solve.
        clock = FakeClock(tick=0.01)
        events = RuntimeEvents()
        with make_manager(events=events, clock=clock) as manager:
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, deadline=0.5,
                retry=JobRetryPolicy(max_retries=5),
            )))
        assert job.state == "failed"
        assert job.failure.kind == "deadline"
        assert job.failure.attempts == 1  # deadlines are never retried
        assert job.attempts[0].outcome == "deadline"
        assert events.count("job_retry") == 0

    def test_deadline_guard_raises_base_exception(self):
        from repro.runtime.jobs import DeadlineGuard

        clock = FakeClock()
        guard = DeadlineGuard(
            lambda t, y: y, deadline_at=1.0, deadline=1.0, job_id=7,
            clock=clock,
        )
        y = np.zeros(2)
        assert guard(0.0, y) is y
        clock.advance(2.0)
        with pytest.raises(JobDeadlineExceeded) as err:
            guard(0.0, y)
        assert not isinstance(err.value, Exception)
        assert err.value.job_id == 7

    def test_deadline_survives_solver_recovery(self, compiled_servo):
        """RecoveryPolicy's Exception guards must not convert a deadline
        into a shrink-and-retry loop."""
        clock = FakeClock(tick=0.01)
        with make_manager(clock=clock) as manager:
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, deadline=0.5,
                recovery=RecoveryPolicy(max_retries=10),
            )))
        assert job.failure.kind == "deadline"

    def test_deadline_already_spent_fails_before_attempt(self,
                                                         compiled_servo):
        clock = FakeClock(tick=10.0)  # first check is already past
        with make_manager(clock=clock) as manager:
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, deadline=1.0,
            )))
        assert job.failure.kind == "deadline"
        assert len(job.attempts) == 0

    def test_backoff_is_capped_by_remaining_deadline(self, compiled_servo):
        slept = []
        clock = FakeClock(tick=0.0)
        clock.now = 0.0

        def sleeper(s):
            slept.append(s)
            clock.advance(s)

        injector = FaultInjector(
            [FaultSpec(task_id=0, mode="raise", count=-1)]
        )
        with make_manager(clock=clock, sleep=sleeper) as manager:
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, fault_injector=injector, deadline=30.0,
                retry=JobRetryPolicy(
                    max_retries=2, backoff=1e6, jitter=0.0,
                ),
            )))
        assert job.state == "failed"
        assert all(s <= 30.0 for s in slept)


class TestCircuitRouting:
    def test_thread_failures_open_circuit_and_reroute(self, compiled_servo):
        events = RuntimeEvents()
        clock = FakeClock()
        with make_manager(
            events=events, clock=clock, failure_threshold=2,
            circuit_cooldown=1000.0,
        ) as manager:
            # Two thread jobs that always fail trip the thread breaker
            # (2 attempts each, retry=0 keeps the count exact).
            for _ in range(2):
                manager.submit(JobSpec(**spec_kwargs(
                    compiled_servo, executor="thread",
                    fault_injector=FaultInjector(
                        [FaultSpec(task_id=0, mode="raise", count=-1)]
                    ),
                    retry=JobRetryPolicy(max_retries=0),
                )))
            assert manager.breakers["thread"].state == "open"
            # A healthy thread job is now rerouted to serial and succeeds.
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, executor="thread",
            )))
        assert job.completed
        assert job.executor_used == "serial"
        rerouted = events.of_kind("job_rerouted")
        assert rerouted and rerouted[-1].data["routed"] == "serial"
        assert manager.breakers["thread"].state == "open"

    def test_recovered_tier_closes_via_half_open_probe(self,
                                                       compiled_servo):
        clock = FakeClock()
        with make_manager(
            clock=clock, failure_threshold=1, circuit_cooldown=5.0,
        ) as manager:
            manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, executor="thread",
                fault_injector=FaultInjector(
                    [FaultSpec(task_id=0, mode="raise", count=-1)]
                ),
                retry=JobRetryPolicy(max_retries=0),
            )))
            assert manager.breakers["thread"].state == "open"
            clock.advance(5.0)
            # Cooldown elapsed: the next thread job is the probe.
            job = manager.submit(JobSpec(**spec_kwargs(
                compiled_servo, executor="thread",
            )))
            assert job.completed
            assert job.executor_used == "thread"
            assert manager.breakers["thread"].state == "closed"

    def test_serial_jobs_never_touch_breakers(self, compiled_servo):
        with make_manager(failure_threshold=1) as manager:
            manager.submit(JobSpec(**spec_kwargs(
                compiled_servo,
                fault_injector=FaultInjector(
                    [FaultSpec(task_id=0, mode="raise", count=-1)]
                ),
                retry=JobRetryPolicy(max_retries=0),
            )))
            assert all(
                b.state == "closed" for b in manager.breakers.values()
            )


class TestWorkdir:
    def test_owned_workdir_removed_on_close(self, compiled_servo):
        manager = make_manager()
        manager.submit(JobSpec(**spec_kwargs(compiled_servo)))
        workdir = manager.workdir
        assert workdir.exists()
        manager.close()
        assert not workdir.exists()

    def test_user_workdir_is_preserved(self, compiled_servo, tmp_path):
        workdir = tmp_path / "jobs"
        with make_manager(workdir=workdir) as manager:
            manager.submit(JobSpec(**spec_kwargs(compiled_servo)))
        assert workdir.exists()
