"""Coverage for the type lattice, declarations, and assorted data types."""

import pytest

from repro.model import MatType, REAL, INTEGER, BOOLEAN, VecType, vec_type
from repro.model.declarations import VarDecl, VarKind
from repro.schedule import Schedule


class TestTypes:
    def test_scalar_types(self):
        assert REAL.is_scalar
        assert REAL.size == 1
        assert REAL.om_name() == "om$Real"
        assert INTEGER.om_name() == "om$Integer"
        assert str(BOOLEAN) == "Boolean"

    def test_vec_type(self):
        v = VecType(3)
        assert not v.is_scalar
        assert v.size == 3
        assert v.component_suffixes() == ("x", "y", "z")
        assert vec_type(2).component_suffixes() == ("x", "y")

    def test_long_vec_numeric_suffixes(self):
        v = VecType(5)
        assert v.component_suffixes() == ("0", "1", "2", "3", "4")

    def test_vec_validation(self):
        with pytest.raises(ValueError):
            VecType(0)

    def test_mat_type(self):
        m = MatType(2, 3)
        assert m.size == 6
        assert not m.is_scalar
        assert m.component_suffixes()[0] == "00"
        assert m.component_suffixes()[-1] == "12"
        with pytest.raises(ValueError):
            MatType(0, 3)

    def test_vec_type_equality(self):
        assert VecType(3) == VecType(3)
        assert VecType(3) != VecType(2)


class TestVarDecl:
    def test_component_values_scalar(self):
        d = VarDecl("x", VarKind.STATE, REAL, start=2.0)
        assert d.component_values("start") == (2.0,)
        assert d.component_values("value") is None

    def test_component_values_vector(self):
        d = VarDecl("r", VarKind.STATE, VecType(3), start=[1, 2, 3])
        assert d.component_values("start") == (1.0, 2.0, 3.0)

    def test_broadcast(self):
        d = VarDecl("r", VarKind.STATE, VecType(3), start=5.0)
        assert d.component_values("start") == (5.0, 5.0, 5.0)

    def test_rebind(self):
        d = VarDecl("k", VarKind.PARAMETER, REAL, value=1.0)
        d2 = d.rebind(value=3.0)
        assert d2.value == 3.0
        assert d.value == 1.0

    def test_bad_start_type(self):
        with pytest.raises(TypeError):
            VarDecl("x", VarKind.STATE, REAL, start=[1.0, 2.0])

    def test_bad_vector_length(self):
        with pytest.raises(ValueError):
            VarDecl("r", VarKind.STATE, VecType(2), start=[1, 2, 3])


class TestScheduleType:
    def test_empty_schedule(self):
        s = Schedule(2, (), (0.0, 0.0))
        assert s.makespan == 0.0
        assert s.imbalance == 1.0
        assert s.tasks_of(0) == ()

    def test_str(self):
        s = Schedule(2, (0, 1), (1.0, 2.0))
        text = str(s)
        assert "2 workers" in text


class TestResultTypes:
    def test_solver_result_repr(self):
        import numpy as np

        from repro.solver import solve_ivp

        r = solve_ivp(lambda t, y: -y, (0.0, 1.0), [1.0], method="rk45")
        assert "rk45" in repr(r)
        assert r.t_final == pytest.approx(1.0)

    def test_flatvar_sym(self):
        from repro.model.flatten import FlatVar
        from repro.symbolic import Sym

        fv = FlatVar("a.b", VarKind.STATE)
        assert fv.sym == Sym("a.b")

    def test_subsystem_str(self, compiled_powerplant):
        sub = compiled_powerplant.partition.subsystems[0]
        assert "SCC#" in str(sub)

    def test_flatmodel_repr(self, compiled_powerplant):
        assert "FlatModel" in repr(compiled_powerplant.flat)

    def test_program_repr(self, compiled_powerplant):
        assert "GeneratedProgram" in repr(compiled_powerplant.program)
