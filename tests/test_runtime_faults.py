"""Fault-tolerance tests: the scripted fault matrix for the hardened
supervisor/worker runtime.

Every injector mode is exercised against every recovery outcome — retry on
the same worker succeeds, reassignment to a healthy worker succeeds, the
pool degrades to serial execution, or the fault is unrecoverable — and
every recovered evaluation is asserted bit-identical to
``SerialExecutor`` (tasks are pure functions of ``(t, y, p)`` on disjoint
slots, so recovery must not change a single bit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ParallelRHS,
    RetryPolicy,
    RuntimeEvents,
    SerialExecutor,
    TaskFailure,
    ThreadedExecutor,
)
from repro.schedule import lpt_schedule
from repro.solver import solve_ivp

RECOVERABLE_MODES = ("raise", "nan", "inf")


@pytest.fixture(scope="module")
def program(compiled_small_bearing):
    return compiled_small_bearing.program


@pytest.fixture(scope="module")
def reference(program):
    """The serial result vector every recovered round must reproduce."""
    res = program.results_buffer()
    SerialExecutor(program).evaluate(
        0.0, program.start_vector(), program.param_vector(), res
    )
    return res


def _evaluate(executor, program):
    res = program.results_buffer()
    executor.evaluate(0.0, program.start_vector(), program.param_vector(),
                      res)
    return res


def _task_on_worker(program, num_workers, worker):
    """A task id the default LPT schedule places on ``worker``."""
    schedule = lpt_schedule(program.task_graph, num_workers)
    for tid in range(program.num_tasks):
        if schedule.assignment[tid] == worker:
            return tid
    pytest.skip(f"no task scheduled on worker {worker}")


class TestFaultSpec:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(task_id=0, mode="explode")

    def test_bad_count(self):
        with pytest.raises(ValueError):
            FaultSpec(task_id=0, mode="raise", count=0)

    def test_negative_task(self):
        with pytest.raises(ValueError):
            FaultSpec(task_id=-1, mode="raise")

    def test_random_plan_deterministic(self):
        a = FaultInjector.random_plan(8, 10, rate=0.3, seed=42)
        b = FaultInjector.random_plan(8, 10, rate=0.3, seed=42)
        assert a.plan == b.plan
        assert a.plan  # rate 0.3 over 80 cells: practically certain

    def test_reset_rearms(self, program):
        inj = FaultInjector([FaultSpec(task_id=0, mode="raise", count=1)])
        inj.wrap_tasks(program)
        assert inj.remaining() == 1
        inj.begin_round()
        with pytest.raises(InjectedFault):
            inj.wrap_tasks(program)[0](
                0.0, program.start_vector(), program.param_vector(),
                program.results_buffer(),
            )
        assert inj.remaining() == 0
        inj.reset()
        assert inj.remaining() == 1 and inj.round_index == -1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_exponential_capped_delay(self):
        p = RetryPolicy(backoff=0.01, backoff_factor=2.0, max_backoff=0.03)
        assert p.delay(1) == pytest.approx(0.01)
        assert p.delay(2) == pytest.approx(0.02)
        assert p.delay(5) == pytest.approx(0.03)  # capped


class TestRetrySucceeds:
    """count=1 faults: the first re-execution on the same worker is clean."""

    @pytest.mark.parametrize("mode", RECOVERABLE_MODES)
    def test_bit_identical_after_retry(self, program, reference, mode):
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=1, mode=mode, count=1)], events=events
        )
        with ThreadedExecutor(program, 2, injector=injector,
                              events=events) as executor:
            res = _evaluate(executor, program)
        assert np.array_equal(res, reference)
        assert events.count("fault_injected") == 1
        assert events.count("task_retry") == 1
        assert events.count("task_reassigned") == 0
        assert not executor.degraded

    def test_hang_within_deadline_is_transparent(self, program, reference):
        # A bounded hang shorter than the level deadline is just a slow
        # task: no retry, no reassignment, identical results.
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=0, mode="hang", hang_seconds=0.05, count=1)],
            events=events,
        )
        with ThreadedExecutor(program, 2, injector=injector, events=events,
                              level_timeout=10.0) as executor:
            res = _evaluate(executor, program)
        assert np.array_equal(res, reference)
        assert events.count("worker_timeout") == 0


class TestReassignmentSucceeds:
    """Worker-pinned unlimited faults: retries on the original worker keep
    failing, so the task moves to a healthy worker and succeeds there."""

    @pytest.mark.parametrize("mode", RECOVERABLE_MODES)
    def test_bit_identical_after_reassignment(self, program, reference, mode):
        tid = _task_on_worker(program, 2, worker=0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode=mode, worker=0, count=-1)],
            events=events,
        )
        with ThreadedExecutor(program, 2, injector=injector,
                              events=events) as executor:
            res = _evaluate(executor, program)
        assert np.array_equal(res, reference)
        assert events.count("task_reassigned") == 1
        reassign = events.of_kind("task_reassigned")[0]
        assert tid in reassign.data["tasks"]
        assert reassign.data["from_worker"] == 0

    def test_kill_reassigns_dead_workers_tasks(self, program, reference):
        tid = _task_on_worker(program, 2, worker=0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode="kill", worker=0, count=1)],
            events=events,
        )
        with ThreadedExecutor(program, 2, injector=injector, events=events,
                              level_timeout=5.0) as executor:
            res = _evaluate(executor, program)
            assert np.array_equal(res, reference)
            # The pool keeps working with the surviving worker.
            assert np.array_equal(_evaluate(executor, program), reference)
        assert events.count("worker_dead") == 1
        assert events.of_kind("worker_dead")[0].data["worker"] == 0


class TestDegradation:
    def test_min_workers_threshold_degrades_to_serial(
        self, program, reference
    ):
        # min_workers=2: losing a single worker of two demotes the pool.
        tid = _task_on_worker(program, 2, worker=0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode="kill", worker=0, count=1)],
            events=events,
        )
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            with ThreadedExecutor(program, 2, injector=injector,
                                  events=events, min_workers=2,
                                  level_timeout=5.0) as executor:
                res = _evaluate(executor, program)
                assert np.array_equal(res, reference)
                assert executor.degraded
                # Subsequent rounds run serially, still bit-identical.
                assert np.array_equal(_evaluate(executor, program), reference)
        assert events.count("degraded") == 1

    def test_all_workers_dead_degrades(self, program, reference):
        events = RuntimeEvents()
        specs = [
            FaultSpec(task_id=tid, mode="kill", worker=w, count=1)
            for w in range(2)
            for tid in [_task_on_worker(program, 2, w)]
        ]
        injector = FaultInjector(specs, events=events)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            with ThreadedExecutor(program, 2, injector=injector,
                                  events=events,
                                  level_timeout=5.0) as executor:
                res = _evaluate(executor, program)
                assert np.array_equal(res, reference)
                assert executor.degraded
        assert events.count("worker_dead") == 2


class TestUnrecoverable:
    @pytest.mark.parametrize("mode", RECOVERABLE_MODES)
    def test_everywhere_failing_task_raises_task_failure(
        self, program, mode
    ):
        # Unpinned, unlimited: fails on the original worker, the
        # reassignment target, and the inline fallback.
        injector = FaultInjector(
            [FaultSpec(task_id=0, mode=mode, count=-1)]
        )
        with ThreadedExecutor(program, 2, injector=injector) as executor:
            with pytest.raises(TaskFailure,
                               match="task evaluation failed"):
                _evaluate(executor, program)
            assert executor.events.count("task_retry") > 0

    def test_task_failure_carries_task_id(self, program):
        injector = FaultInjector(
            [FaultSpec(task_id=2, mode="raise", count=-1)]
        )
        with ThreadedExecutor(program, 2, injector=injector) as executor:
            with pytest.raises(TaskFailure) as excinfo:
                _evaluate(executor, program)
        assert excinfo.value.task_id == 2


class TestBarrierDeadlockRegression:
    """The seed's latent deadlock: ``self._done.get()`` blocked forever if
    a worker thread died without signalling (e.g. killed by an injected
    fault before the completion message).  The hardened barrier must
    detect the death via liveness checks / the bounded timeout instead."""

    def test_worker_killed_outside_signalling_does_not_deadlock(
        self, program, reference
    ):
        injector = FaultInjector(
            [FaultSpec(task_id=0, mode="kill", count=1)]
        )
        with ThreadedExecutor(program, 1, injector=injector,
                              level_timeout=5.0) as executor:
            # Sole worker dies: evaluation must degrade inline, not hang.
            with pytest.warns(RuntimeWarning, match="degraded to serial"):
                res = _evaluate(executor, program)
        assert np.array_equal(res, reference)
        assert executor.degraded

    def test_hung_worker_hits_barrier_timeout(self, program, reference):
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=0, mode="hang", hang_seconds=1.5, count=1)],
            events=events,
        )
        with ThreadedExecutor(program, 2, injector=injector, events=events,
                              level_timeout=0.3) as executor:
            res = _evaluate(executor, program)
            assert np.array_equal(res, reference)
        assert events.count("worker_timeout") == 1
        assert events.count("worker_dead") == 1


class TestClose:
    def test_close_is_idempotent(self, program):
        executor = ThreadedExecutor(program, 2)
        executor.close()
        executor.close()  # second close must be a no-op
        assert executor.zombie_workers == []

    def test_close_after_worker_deaths(self, program):
        specs = [
            FaultSpec(task_id=tid, mode="kill", worker=w, count=1)
            for w in range(2)
            for tid in [_task_on_worker(program, 2, w)]
        ]
        executor = ThreadedExecutor(
            program, 2, injector=FaultInjector(specs), level_timeout=5.0
        )
        with pytest.warns(RuntimeWarning):
            _evaluate(executor, program)
        executor.close()  # must not raise or hang on dead threads
        executor.close()
        assert executor.zombie_workers == []

    def test_close_reports_zombie_workers(self, program):
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=0, mode="hang", hang_seconds=1.0, count=1)],
            events=events,
        )
        executor = ThreadedExecutor(program, 1, injector=injector,
                                    events=events, level_timeout=0.2,
                                    join_timeout=0.1)
        with pytest.warns(RuntimeWarning, match="degraded"):
            _evaluate(executor, program)  # times out, degrades inline
        with pytest.warns(RuntimeWarning, match="did not join"):
            executor.close()
        assert executor.zombie_workers == [0]
        assert events.count("close_timeout") == 1


class TestStaleTaskTimes:
    def test_serial_executor_zeroes_times_each_round(self, program):
        injector = FaultInjector(
            [FaultSpec(task_id=program.num_tasks - 1, mode="raise",
                       count=1)]
        )
        executor = SerialExecutor(program, injector=injector)
        y, p = program.start_vector(), program.param_vector()
        with pytest.raises(InjectedFault):
            executor.evaluate(0.0, y, p, program.results_buffer())
        # The aborted round must not leave the failed task's slot holding
        # the previous round's measurement (the semi-dynamic LPT would
        # otherwise schedule from a mix of rounds).
        assert executor.last_task_times[program.num_tasks - 1] == 0.0

    def test_threaded_executor_zeroes_times_each_round(self, program):
        with ThreadedExecutor(program, 2) as executor:
            _evaluate(executor, program)
            before = executor.last_task_times.copy()
            assert before.sum() > 0
            executor.last_task_times[:] = 7.0
            _evaluate(executor, program)
            assert np.all(executor.last_task_times < 7.0)


class TestCorruption:
    def test_corrupt_mode_writes_scripted_value(self, program):
        # 'corrupt' is the silent-fault mode NaN validation cannot catch:
        # it documents the detection boundary.
        tid = 0
        slot = program.task_output_slots(tid)[0]
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode="corrupt", corrupt_value=123.5,
                       count=1)]
        )
        executor = SerialExecutor(program, injector=injector)
        res = program.results_buffer()
        executor.evaluate(0.0, program.start_vector(),
                          program.param_vector(), res)
        assert res[slot] == 123.5


class TestEndToEndSimulation:
    def test_killed_worker_mid_simulation_bit_identical(
        self, program
    ):
        """Acceptance: a scripted kill of a single worker mid-round
        completes the simulation bit-identical to ``SerialExecutor``,
        with the retry/reassignment recorded in the event log."""
        y0 = program.start_vector()
        span = (0.0, 0.02)

        serial_rhs = ParallelRHS(program, SerialExecutor(program))
        expected = solve_ivp(serial_rhs, span, y0, method="rk45")

        tid = _task_on_worker(program, 2, worker=0)
        events = RuntimeEvents()
        injector = FaultInjector(
            [FaultSpec(task_id=tid, mode="kill", worker=0, round_index=5,
                       count=1)],
            events=events,
        )
        executor = ThreadedExecutor(program, 2, injector=injector,
                                    events=events, level_timeout=5.0)
        threaded_rhs = ParallelRHS(program, executor)
        try:
            result = solve_ivp(threaded_rhs, span, y0, method="rk45")
        finally:
            executor.close()

        assert result.success and expected.success
        assert np.array_equal(result.ts, expected.ts)
        assert np.array_equal(result.ys, expected.ys)
        assert events.count("fault_injected") == 1
        assert events.count("worker_dead") == 1
        assert events.count("task_reassigned") >= 1

    def test_random_fault_storm_recovers_bit_identical(self, program):
        """Seeded random raise/nan faults across many rounds: every round
        recovers to the exact serial result."""
        y, p = program.start_vector(), program.param_vector()
        reference = program.results_buffer()
        SerialExecutor(program).evaluate(0.0, y, p, reference)

        events = RuntimeEvents()
        injector = FaultInjector.random_plan(
            program.num_tasks, num_rounds=15, rate=0.05,
            modes=("raise", "nan"), seed=7, events=events,
        )
        with ThreadedExecutor(program, 3, injector=injector,
                              events=events) as executor:
            for _ in range(15):
                res = program.results_buffer()
                executor.evaluate(0.0, y, p, res)
                assert np.array_equal(res, reference)
        assert events.count("fault_injected") == injector.fired
