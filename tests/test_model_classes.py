"""Model class tests: declarations, inheritance, composition, equations."""

import pytest

from repro.model import (
    Model,
    ModelClass,
    REAL,
    VarKind,
    VecType,
)
from repro.symbolic import Der, Sym, Vec


class TestDeclarations:
    def test_state_returns_symbol(self):
        cls = ModelClass("C")
        x = cls.state("x", start=1.0)
        assert x == Sym("x")
        assert cls.declarations["x"].kind is VarKind.STATE
        assert cls.declarations["x"].start == 1.0

    def test_vector_state_returns_vec(self):
        cls = ModelClass("C")
        r = cls.state("r", start=[1.0, 2.0], mtype=VecType(2))
        assert isinstance(r, Vec)
        assert r[0] == Sym("r.x")
        assert r[1] == Sym("r.y")

    def test_parameter_requires_value(self):
        cls = ModelClass("C")
        with pytest.raises(ValueError):
            from repro.model.declarations import VarDecl

            VarDecl("k", VarKind.PARAMETER)

    def test_duplicate_member_rejected(self):
        cls = ModelClass("C")
        cls.state("x")
        with pytest.raises(ValueError):
            cls.parameter("x", 1.0)

    def test_dot_in_name_rejected(self):
        cls = ModelClass("C")
        with pytest.raises(ValueError):
            cls.state("a.b")

    def test_vector_start_length_checked(self):
        cls = ModelClass("C")
        with pytest.raises(ValueError):
            cls.state("r", start=[1.0, 2.0, 3.0], mtype=VecType(2))

    def test_scalar_start_broadcasts_over_vector(self):
        cls = ModelClass("C")
        cls.state("r", start=0.5, mtype=VecType(3))
        decl = cls.declarations["r"]
        assert decl.component_values("start") == (0.5, 0.5, 0.5)


class TestEquations:
    def test_auto_labels(self):
        cls = ModelClass("C")
        x = cls.state("x")
        eq1 = cls.equation(Der(x), x)
        eq2 = cls.equation(x, x)
        assert eq1.label == "Eq[1]"
        assert eq2.label == "Eq[2]"

    def test_ode_helper_scalar(self):
        cls = ModelClass("C")
        x = cls.state("x")
        eq = cls.ode(x, -x)
        assert eq.lhs == Der(x)

    def test_ode_helper_vector(self):
        cls = ModelClass("C")
        r = cls.state("r", mtype=VecType(2))
        v = cls.state("v", mtype=VecType(2))
        eq = cls.ode(r, v)
        assert isinstance(eq.lhs, Vec)
        assert eq.lhs[0] == Der(Sym("r.x"))

    def test_mixed_vector_scalar_rejected(self):
        cls = ModelClass("C")
        r = cls.state("r", mtype=VecType(2))
        with pytest.raises(TypeError):
            cls.equation(r, Sym("x"))

    def test_vector_length_mismatch_rejected(self):
        cls = ModelClass("C")
        r = cls.state("r", mtype=VecType(2))
        with pytest.raises(ValueError):
            cls.equation(r, Vec([1, 2, 3]))

    def test_list_rhs_coerced_to_vec(self):
        cls = ModelClass("C")
        r = cls.state("r", mtype=VecType(2))
        eq = cls.equation(r, [0, 0])
        assert isinstance(eq.rhs, Vec)


class TestInheritance:
    def test_single_chain(self):
        a = ModelClass("A")
        a.state("x")
        b = ModelClass("B", inherits=[a])
        b.state("y")
        assert set(b.all_declarations()) == {"x", "y"}
        assert [c.name for c in b.linearize()] == ["B", "A"]

    def test_member_lookup_through_chain(self):
        a = ModelClass("A")
        a.parameter("k", 2.0)
        b = ModelClass("B", inherits=[a])
        assert b.member("k") == Sym("k")

    def test_equations_accumulate(self):
        a = ModelClass("A")
        x = a.state("x")
        a.ode(x, -x)
        b = ModelClass("B", inherits=[a])
        y = b.state("y")
        b.ode(y, x)
        assert len(b.all_equations()) == 2

    def test_derived_declaration_wins(self):
        a = ModelClass("A")
        a.parameter("k", 1.0)
        b = ModelClass("B", inherits=[a])
        b.declarations["k"] = a.declarations["k"].rebind(value=5.0)
        assert b.all_declarations()["k"].value == 5.0

    def test_diamond_c3(self):
        base = ModelClass("Base")
        left = ModelClass("Left", inherits=[base])
        right = ModelClass("Right", inherits=[base])
        top = ModelClass("Top", inherits=[left, right])
        names = [c.name for c in top.linearize()]
        assert names == ["Top", "Left", "Right", "Base"]

    def test_inconsistent_hierarchy_rejected(self):
        a = ModelClass("A")
        b = ModelClass("B", inherits=[a])
        with pytest.raises(TypeError):
            ModelClass("C", inherits=[a, b]).linearize()

    def test_unknown_member(self):
        cls = ModelClass("C")
        with pytest.raises(KeyError):
            cls.member("nope")


class TestComposition:
    def test_part_declared(self):
        inner = ModelClass("Inner")
        inner.state("x")
        outer = ModelClass("Outer")
        outer.part("sub", inner)
        assert outer.all_parts() == {"sub": inner}

    def test_part_name_conflict(self):
        inner = ModelClass("Inner")
        outer = ModelClass("Outer")
        outer.state("sub")
        with pytest.raises(ValueError):
            outer.part("sub", inner)

    def test_parts_inherited(self):
        inner = ModelClass("Inner")
        a = ModelClass("A")
        a.part("p", inner)
        b = ModelClass("B", inherits=[a])
        assert "p" in b.all_parts()


class TestInstances:
    def test_override_validation(self):
        cls = ModelClass("C")
        cls.state("x")
        cls.parameter("k", 1.0)
        cls.algebraic("a")
        model = Model("m")
        model.instance("I", cls, overrides={"k": 2.0, "x": 3.0})
        with pytest.raises(KeyError):
            model.instance("J", cls, overrides={"nope": 1.0})
        with pytest.raises(ValueError):
            model.instance("K", cls, overrides={"a": 1.0})

    def test_duplicate_instance_rejected(self):
        cls = ModelClass("C")
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(ValueError):
            model.instance("I", cls)

    def test_instance_array_naming(self):
        cls = ModelClass("C")
        model = Model("m")
        insts = model.instance_array("W", 3, cls)
        assert [i.name for i in insts] == ["W1", "W2", "W3"]

    def test_qualified_sym(self):
        cls = ModelClass("C")
        cls.state("r", mtype=VecType(2))
        cls.state("x")
        model = Model("m")
        inst = model.instance("I", cls)
        assert inst.sym("x") == Sym("I.x")
        ref = inst.sym("r")
        assert isinstance(ref, Vec)
        assert ref[1] == Sym("I.r.y")

    def test_der_helper(self):
        cls = ModelClass("C")
        cls.state("x")
        model = Model("m")
        inst = model.instance("I", cls)
        assert inst.der("x") == Der(Sym("I.x"))

    def test_unknown_member_in_sym(self):
        cls = ModelClass("C")
        model = Model("m")
        inst = model.instance("I", cls)
        with pytest.raises(KeyError):
            inst.sym("ghost")


from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def class_dags(draw):
    """Random inheritance DAGs: class i may inherit from classes < i."""
    n = draw(st.integers(1, 7))
    bases = []
    for i in range(n):
        if i == 0:
            bases.append([])
        else:
            k = draw(st.integers(0, min(i, 3)))
            parents = draw(
                st.lists(st.integers(0, i - 1), min_size=k, max_size=k,
                         unique=True)
            )
            bases.append(parents)
    return bases


@settings(max_examples=100, deadline=None)
@given(class_dags())
def test_c3_matches_python_mro(bases):
    """Our C3 linearization must agree with CPython's MRO on any
    hierarchy both accept (and reject exactly the hierarchies CPython
    rejects)."""
    model_classes = []
    py_classes = []
    py_error = None
    for i, parents in enumerate(bases):
        model_classes.append(
            ModelClass(f"C{i}", inherits=[model_classes[p] for p in parents])
        )
        if py_error is None:
            try:
                py_classes.append(
                    type(f"C{i}",
                         tuple(py_classes[p] for p in parents) or (object,),
                         {})
                )
            except TypeError:
                py_error = i

    top = model_classes[-1]
    if py_error is not None and py_error == len(bases) - 1:
        with pytest.raises(TypeError):
            top.linearize()
        return
    if py_error is not None:
        return  # an ancestor was already inconsistent; skip

    ours = [c.name for c in top.linearize()]
    theirs = [c.__name__ for c in py_classes[-1].__mro__ if c is not object]
    assert ours == theirs
