"""End-to-end integration tests: the whole Figure-7 pipeline.

Source text (or programmatic model) → flatten → analyse → generate code →
schedule → execute under the parallel runtime → integrate with the
from-scratch solvers → validate against closed-form solutions.
"""

import math

import numpy as np
import pytest

from repro import compile_model, compile_source
from repro.analysis import simulate_pipeline
from repro.runtime import (
    PARSYTEC_GCPP,
    SPARCCENTER_2000,
    ParallelRHS,
    ThreadedExecutor,
    VirtualTimeParallelRHS,
    speedup_curve,
)
from repro.schedule import SemiDynamicScheduler, lpt_schedule
from repro.solver import solve_ivp

_OSC_SOURCE = """
MODEL osc;
CLASS Oscillator
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Oscillator;
INSTANCE A INHERITS Oscillator;
END osc;
"""


class TestSourceToSolution:
    def test_oscillator_closed_form(self):
        compiled = compile_source(_OSC_SOURCE)
        f = compiled.program.make_rhs()
        result = solve_ivp(f, (0.0, 3.0), compiled.program.start_vector(),
                           method="rk45", rtol=1e-9, atol=1e-12)
        assert result.success
        # x(t) = cos(2t) for k = 4.
        assert result.y_final[0] == pytest.approx(math.cos(6.0), abs=1e-7)
        assert result.y_final[1] == pytest.approx(-2 * math.sin(6.0),
                                                  abs=1e-6)

    def test_every_method_agrees(self):
        compiled = compile_source(_OSC_SOURCE)
        f = compiled.program.make_rhs()
        y0 = compiled.program.start_vector()
        finals = {}
        for method in ("rk45", "adams", "bdf", "lsoda"):
            r = solve_ivp(f, (0.0, 2.0), y0, method=method,
                          rtol=1e-8, atol=1e-11)
            assert r.success, method
            finals[method] = r.y_final
        reference = finals["rk45"]
        for method, final in finals.items():
            assert np.allclose(final, reference, atol=1e-5), method

    def test_summary(self):
        compiled = compile_source(_OSC_SOURCE)
        text = compiled.summary()
        assert "model osc" in text
        assert "SCC" in text


class TestParallelNumericsEquivalence:
    """The parallelised RHS must be numerically identical to the serial
    one — scheduling must never change results."""

    def test_full_simulation_serial_vs_parallel(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        y0 = program.start_vector()
        serial_f = program.make_rhs()
        parallel_f = ParallelRHS(program)
        r1 = solve_ivp(serial_f, (0.0, 0.005), y0, method="rk45",
                       rtol=1e-7, atol=1e-10)
        r2 = solve_ivp(parallel_f, (0.0, 0.005), y0, method="rk45",
                       rtol=1e-7, atol=1e-10)
        assert r1.success and r2.success
        assert np.allclose(r1.y_final, r2.y_final, rtol=1e-12, atol=1e-12)

    def test_threaded_simulation_matches(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        y0 = program.start_vector()
        serial = solve_ivp(program.make_rhs(), (0.0, 0.002), y0,
                           method="rk45", rtol=1e-6, atol=1e-9)
        with ThreadedExecutor(program, num_workers=3) as executor:
            f = ParallelRHS(program, executor)
            threaded = solve_ivp(f, (0.0, 0.002), y0, method="rk45",
                                 rtol=1e-6, atol=1e-9)
        assert np.allclose(serial.y_final, threaded.y_final,
                           rtol=1e-12, atol=1e-12)

    def test_semidynamic_schedule_does_not_change_results(
        self, compiled_small_bearing
    ):
        program = compiled_small_bearing.program
        y0 = program.start_vector()
        scheduler = SemiDynamicScheduler(program.task_graph, 2,
                                         reschedule_every=3)
        f = ParallelRHS(program, scheduler=scheduler, feed_measurements=True)
        r = solve_ivp(f, (0.0, 0.002), y0, method="rk45",
                      rtol=1e-6, atol=1e-9)
        reference = solve_ivp(program.make_rhs(), (0.0, 0.002), y0,
                              method="rk45", rtol=1e-6, atol=1e-9)
        assert np.allclose(r.y_final, reference.y_final,
                           rtol=1e-12, atol=1e-12)


class TestIntegratedSpeedupStory:
    def test_bearing_speedup_shapes(self, compiled_bearing):
        """The integrated Figure 12 story: on the low-latency shared-memory
        model speedup keeps growing through 7 workers; on the 140 µs
        distributed-memory model throughput peaks early and then decays."""
        graph = compiled_bearing.program.task_graph
        n = compiled_bearing.system.num_states
        import dataclasses

        # Calibrate compute speed so per-round compute is 1995-scale
        # (paper: the 2D bearing RHS is tens of thousands of flops, taking
        # on the order of a millisecond on those machines).
        sparc = dataclasses.replace(SPARCCENTER_2000, compute_speed=0.02)
        parsytec = dataclasses.replace(PARSYTEC_GCPP, compute_speed=0.02)

        shared = dict(speedup_curve(graph, sparc, n, range(1, 18)))
        distributed = dict(speedup_curve(graph, parsytec, n, range(1, 18)))

        # Shared memory: clearly growing through 7 processors.
        assert shared[7] > 3.0 * shared[1]
        # Knee: beyond ~8 processors gains flatten out.
        assert shared[17] < shared[7] * 1.8
        # Distributed: peaks at a small count, lower than shared's best.
        peak_w = max(distributed, key=distributed.get)
        assert peak_w <= 8
        assert max(distributed.values()) < max(shared.values())

    def test_virtual_time_simulation(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        y0 = program.start_vector()
        f = VirtualTimeParallelRHS(program, SPARCCENTER_2000, num_workers=4)
        r = solve_ivp(f, (0.0, 0.001), y0, method="rk45",
                      rtol=1e-6, atol=1e-9)
        assert r.success
        assert f.rhs_calls_per_second > 0
        assert f.ncalls == r.stats.nfev


class TestSubsystemLevelParallelism:
    def test_powerplant_partition_enables_pipeline(self, compiled_powerplant):
        part = compiled_powerplant.partition
        costs = [float(len(s.variables)) for s in part.subsystems]
        report = simulate_pipeline(part, costs, num_steps=500,
                                   comm_latency=0.01)
        # Many near-equal SCCs on few levels: decent pipeline speedup.
        assert report.speedup > 2.0

    def test_bearing_partition_gives_nothing(self, compiled_bearing):
        """Section 6: the bearing's system-level partitioning is useless —
        one SCC holds all the work."""
        part = compiled_bearing.partition
        costs = [float(len(s.variables)) for s in part.subsystems]
        report = simulate_pipeline(part, costs, num_steps=500)
        assert report.speedup < 1.1


class TestStartFileWorkflow:
    def test_rerun_with_modified_start_values(self, tmp_path):
        from repro.codegen import (
            apply_start_file,
            read_start_file,
            write_start_file,
        )

        compiled = compile_source(_OSC_SOURCE)
        system = compiled.system
        path = tmp_path / "start.txt"
        write_start_file(system, path)
        text = path.read_text().replace("A.x = 1.0", "A.x = 0.5")
        path.write_text(text)
        y0, params = apply_start_file(system, read_start_file(path))
        f = compiled.program.make_rhs(np.asarray(params))
        r = solve_ivp(f, (0.0, 1.0), y0, method="rk45",
                      rtol=1e-9, atol=1e-12)
        assert r.y_final[0] == pytest.approx(0.5 * math.cos(2.0), abs=1e-7)
