"""Generated analytic Jacobians in every back end (section 3.2.1)."""

import re

import numpy as np
import pytest

from repro.codegen import generate_c, generate_fortran, generate_program


class TestFortranJacobian:
    def test_structure(self, compiled_servo):
        f90 = generate_fortran(compiled_servo.system, mode="serial",
                               jacobian=True)
        assert "subroutine JAC(t, yin, p, dfdy)" in f90.source
        assert "dfdy = 0.0_dp" in f90.source
        assert "end subroutine JAC" in f90.source

    def test_entries_match_python_jacobian(self, compiled_servo):
        program = generate_program(compiled_servo.system, jacobian=True)
        jac = program.make_jac()
        J = jac(0.0, program.start_vector())
        f90 = generate_fortran(compiled_servo.system, mode="serial",
                               jacobian=True)
        # Parse constant entries dfdy(i,j) = value out of the source
        # (the servo Jacobian is constant, so this is exact).
        pattern = re.compile(
            r"dfdy\((\d+),(\d+)\) = \(?(-?[0-9.]+)_dp\)?"
        )
        found = {}
        for i, j, value in pattern.findall(f90.source):
            found[(int(i) - 1, int(j) - 1)] = float(value)
        assert found, "no Jacobian entries emitted"
        for (i, j), value in found.items():
            assert J[i, j] == pytest.approx(value)
        # All nonzeros covered.
        nonzero = {(i, j) for i, j in zip(*np.nonzero(J))}
        assert nonzero == set(found)

    def test_without_flag_absent(self, compiled_servo):
        f90 = generate_fortran(compiled_servo.system, mode="serial")
        assert "subroutine JAC" not in f90.source


class TestCJacobian:
    def test_structure_and_values(self, compiled_servo):
        c = generate_c(compiled_servo.system, mode="serial", jacobian=True)
        assert "void JAC(double t" in c.source
        program = generate_program(compiled_servo.system, jacobian=True)
        J = program.make_jac()(0.0, program.start_vector())
        n = compiled_servo.system.num_states
        pattern = re.compile(r"dfdy\[(\d+)\] = \(?(-?[0-9.]+)\)?;")
        found = {}
        for flat_idx, value in pattern.findall(c.source):
            k = int(flat_idx)
            found[(k // n, k % n)] = float(value)
        assert found
        for (i, j), value in found.items():
            assert J[i, j] == pytest.approx(value)

    def test_nonlinear_model_compiles(self, compiled_small_bearing):
        # Just structural: the bearing Jacobian has CSE temps and
        # conditionals; generation must not crash and must emit entries.
        c = generate_c(compiled_small_bearing.system, mode="serial",
                       jacobian=True)
        assert c.source.count("dfdy[") > 50
        f90 = generate_fortran(compiled_small_bearing.system, mode="serial",
                               jacobian=True)
        assert f90.source.count("dfdy(") > 50
