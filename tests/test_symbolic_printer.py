"""Printer tests: infix, FullForm, srepr, code dialects, vectors."""

import math

import pytest

from repro.symbolic import (
    Const,
    Der,
    ITE,
    Rel,
    Sym,
    Vec,
    abs_,
    code,
    cos,
    cross,
    dot,
    evaluate,
    fullform,
    if_then_else,
    infix,
    norm,
    sin,
    sqrt,
    srepr,
    symbols,
    tree,
    vec2,
    vec3,
    zeros,
)

x, y, z = symbols("x y z")


class TestInfix:
    def test_roundtrip_through_python_eval(self):
        e = sin(x) * (y + 2) ** 2 - 3 / (x + 5)
        env = {"x": 0.3, "y": 1.1}
        text = infix(e)
        value = eval(text, {"sin": math.sin}, dict(env))
        assert value == pytest.approx(evaluate(e, env))

    def test_negative_coefficient_renders_minus(self):
        assert infix(x - y) in ("x - y", "-y + x")

    def test_precedence_parentheses(self):
        e = (x + y) * z
        assert "(" in infix(e)

    def test_power_of_sum(self):
        text = infix((x + y) ** 2)
        assert text == "(x + y)**2"

    def test_conditional(self):
        e = if_then_else(x.gt(0), x, -x)
        assert "if" in infix(e)

    def test_der(self):
        assert infix(Der(x)) == "der(x)"


class TestFullForm:
    def test_figure11_shape(self):
        # { x'[t] == y[t], y'[t] == -x[t] } in prefix form.
        e = Der(Sym("x")) - Sym("y")
        text = fullform(e, annotate=True)
        assert "Derivative[1][om$Type[x, om$Real]][om$Type[t, om$Real]]" in text
        assert "om$Type[y, om$Real]" in text

    def test_unannotated(self):
        assert fullform(x + y) == "Plus[x, y]"
        assert fullform(x * y) == "Times[x, y]"
        assert fullform(x**2) == "Power[x, 2]"

    def test_minus_special_case(self):
        assert fullform(-x) == "Minus[x]"

    def test_functions_capitalised(self):
        assert fullform(sin(x)) == "Sin[x]"
        assert fullform(sqrt(x)) == "Sqrt[x]"

    def test_relational(self):
        assert fullform(Rel("<", x, y)) == "Less[x, y]"

    def test_conditional(self):
        text = fullform(ITE(Rel(">", x, Const(0)), x, y))
        assert text == "If[Greater[x, 0], x, y]"

    def test_custom_type_table(self):
        text = fullform(x, annotate=True, types={"x": "om$Integer"})
        assert text == "om$Type[x, om$Integer]"


class TestSrepr:
    def test_roundtrip(self):
        from repro.symbolic import BoolOp, Call, add, mul, pow_

        e = sin(x) * (y + 2) ** 2 + abs_(z)
        namespace = {
            "add": add, "mul": mul, "pow_": pow_, "Call": Call,
            "Const": Const, "Sym": Sym, "Rel": Rel, "ITE": ITE,
            "BoolOp": BoolOp, "Der": Der,
        }
        rebuilt = eval(srepr(e), namespace)
        assert rebuilt == e


class TestCodeDialects:
    def test_python_evaluates(self):
        e = sin(x) + x**2 / (y + 3)
        text = code(e, "python")
        value = eval(text, {"sin": math.sin}, {"x": 0.5, "y": 1.0})
        assert value == pytest.approx(evaluate(e, {"x": 0.5, "y": 1.0}))

    def test_python_rename(self):
        text = code(x + y, "python", rename=lambda n: f"v_{n}")
        assert "v_x" in text and "v_y" in text

    def test_fortran_constants_typed(self):
        text = code(x + Const(2.5), "fortran")
        assert "2.5_dp" in text

    def test_fortran_merge_for_conditional(self):
        text = code(if_then_else(x.gt(0), x, y), "fortran")
        assert text.startswith("merge(")

    def test_fortran_noteq(self):
        text = code(Rel("!=", x, y), "fortran")
        assert "/=" in text

    def test_c_pow(self):
        text = code(x ** Const(2.5), "c")
        assert text.startswith("pow(")

    def test_c_ternary(self):
        text = code(if_then_else(x.gt(0), x, y), "c")
        assert "?" in text and ":" in text

    def test_c_fabs(self):
        assert "fabs" in code(abs_(x), "c")

    def test_der_rejected(self):
        with pytest.raises(ValueError):
            code(Der(x), "python")

    def test_unknown_dialect(self):
        with pytest.raises(ValueError):
            code(x, "cobol")


class TestTree:
    def test_contains_node_labels(self):
        text = tree(sin(x) + 2)
        assert "Add" in text
        assert "Call sin" in text
        assert "Sym x" in text


class TestVec:
    def test_componentwise_arithmetic(self):
        a = vec2(x, y)
        b = vec2(1, 2)
        assert (a + b)[0] == x + 1
        assert (a - b)[1] == y - 2
        assert (a * 2)[0] == 2 * x
        assert (2 * a)[1] == 2 * y
        assert (a / 2)[0] == 0.5 * x
        assert (-a)[0] == -x

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            vec2(x, y) + vec3(x, y, z)

    def test_dot(self):
        assert dot(vec2(1, 2), vec2(x, y)) == x + 2 * y

    def test_cross_3d(self):
        ex = vec3(1, 0, 0)
        ey = vec3(0, 1, 0)
        assert cross(ex, ey) == vec3(0, 0, 1)

    def test_cross_2d_scalar(self):
        assert cross(vec2(1, 0), vec2(0, 1)) == Const(1)

    def test_norm(self):
        n = norm(vec2(3, 4))
        assert evaluate(n, {}) == pytest.approx(5.0)

    def test_zeros(self):
        assert zeros(3) == vec3(0, 0, 0)

    def test_immutability(self):
        v = vec2(x, y)
        with pytest.raises(AttributeError):
            v.components = ()  # type: ignore[misc]

    def test_vec_equality_and_hash(self):
        assert vec2(x, y) == vec2(x, y)
        assert hash(vec2(x, y)) == hash(vec2(x, y))
        assert vec2(x, y) != vec2(y, x)

    def test_iteration_and_indexing(self):
        v = vec3(x, y, z)
        assert list(v) == [x, y, z]
        assert v[2] is z
        assert len(v) == 3
