"""Scheduler tests: task graphs, LPT (with Graham-bound property test),
semi-dynamic LPT, DAG list scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import (
    SemiDynamicScheduler,
    Task,
    TaskGraph,
    graham_bound,
    list_schedule,
    lpt_schedule,
    makespan_lower_bound,
    speedup_estimate,
)


def _tasks(weights, deps=None):
    deps = deps or {}
    return TaskGraph(
        [
            Task(
                task_id=i,
                name=f"t{i}",
                outputs=(f"o{i}",),
                inputs=(),
                weight=w,
                depends_on=tuple(deps.get(i, ())),
            )
            for i, w in enumerate(weights)
        ]
    )


class TestTaskGraph:
    def test_ids_must_be_contiguous(self):
        with pytest.raises(ValueError):
            TaskGraph([Task(1, "t", (), (), 1.0)])

    def test_invalid_dependency(self):
        with pytest.raises(ValueError):
            _tasks([1.0, 1.0], deps={0: [5]})

    def test_self_dependency(self):
        with pytest.raises(ValueError):
            _tasks([1.0], deps={0: [0]})

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            _tasks([1.0, 1.0], deps={0: [1], 1: [0]})

    def test_totals(self):
        g = _tasks([1.0, 2.0, 3.0])
        assert g.total_weight == 6.0
        assert g.max_weight == 3.0
        assert g.independent()

    def test_critical_path(self):
        g = _tasks([1.0, 2.0, 3.0], deps={2: [0], 0: [1]})
        assert g.critical_path_weight() == 6.0
        g2 = _tasks([1.0, 2.0, 3.0], deps={2: [1]})
        assert g2.critical_path_weight() == 5.0

    def test_with_weights(self):
        g = _tasks([1.0, 2.0])
        g2 = g.with_weights([5.0, 6.0])
        assert g2.total_weight == 11.0
        assert g.total_weight == 3.0  # original untouched


class TestLpt:
    def test_classic_lpt_example(self):
        # The textbook LPT worst-case family: OPT is 9 ({5,4} | {3,3,3})
        # but LPT produces 10 — still within Graham's (4/3 - 1/6)·OPT.
        g = _tasks([5.0, 4.0, 3.0, 3.0, 3.0])
        s = lpt_schedule(g, 2)
        assert s.makespan == pytest.approx(10.0)
        assert s.makespan <= graham_bound(2) * 9.0

    def test_all_on_one_worker(self):
        g = _tasks([1.0, 2.0])
        s = lpt_schedule(g, 1)
        assert s.makespan == 3.0
        assert s.assignment == (0, 0)

    def test_more_workers_than_tasks(self):
        g = _tasks([3.0, 1.0])
        s = lpt_schedule(g, 5)
        assert s.makespan == 3.0

    def test_deterministic(self):
        g = _tasks([3.0, 3.0, 2.0, 2.0, 1.0])
        assert lpt_schedule(g, 3).assignment == lpt_schedule(g, 3).assignment

    def test_tasks_of(self):
        g = _tasks([5.0, 1.0])
        s = lpt_schedule(g, 2)
        all_ids = set()
        for w in range(2):
            all_ids.update(s.tasks_of(w))
        assert all_ids == {0, 1}

    def test_imbalance_of_balanced(self):
        g = _tasks([1.0] * 8)
        s = lpt_schedule(g, 4)
        assert s.imbalance == pytest.approx(1.0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            lpt_schedule(_tasks([1.0]), 0)

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.floats(0.01, 100.0), min_size=1, max_size=30),
        st.integers(1, 8),
    )
    def test_list_scheduling_guarantee_property(self, weights, m):
        """Any list schedule obeys makespan ≤ mean load + (1 − 1/m)·p_max
        (Graham 1966), and can never beat the trivial lower bound."""
        g = _tasks(weights)
        s = lpt_schedule(g, m)
        lower = makespan_lower_bound(g, m)
        guarantee = g.total_weight / m + (1.0 - 1.0 / m) * g.max_weight
        assert lower - 1e-9 <= s.makespan <= guarantee + 1e-9
        # Sanity: every task placed exactly once.
        assert sorted(
            tid for w in range(m) for tid in s.tasks_of(w)
        ) == list(range(len(weights)))
        # Loads consistent with assignment.
        for w in range(m):
            expected = sum(weights[tid] for tid in s.tasks_of(w))
            assert s.loads[w] == pytest.approx(expected)

    def test_speedup_estimate(self):
        g = _tasks([1.0] * 8)
        s = lpt_schedule(g, 4)
        assert speedup_estimate(g, s) == pytest.approx(4.0)


class TestSemiDynamic:
    def test_reschedules_on_schedule(self):
        g = _tasks([1.0, 1.0, 1.0, 1.0])
        sched = SemiDynamicScheduler(g, 2, reschedule_every=3)
        for _ in range(3):
            sched.observe([1.0, 1.0, 1.0, 1.0])
        assert sched.num_reschedules == 1

    def test_adapts_to_changed_weights(self):
        g = _tasks([1.0, 1.0, 1.0, 1.0])
        sched = SemiDynamicScheduler(g, 2, reschedule_every=1, smoothing=1.0)
        # Task 0 suddenly dominates: it must end up alone on a worker.
        schedule = sched.observe([30.0, 1.0, 1.0, 1.0])
        w0 = schedule.assignment[0]
        assert schedule.tasks_of(w0) == (0,)

    def test_smoothing(self):
        g = _tasks([1.0, 1.0])
        sched = SemiDynamicScheduler(g, 1, smoothing=0.5)
        sched.observe([3.0, 1.0])
        assert sched.estimates[0] == pytest.approx(2.0)

    def test_overhead_accounted(self):
        g = _tasks([1.0] * 16)
        sched = SemiDynamicScheduler(g, 4, reschedule_every=1)
        for _ in range(10):
            sched.observe([1.0] * 16)
        assert sched.overhead_seconds > 0
        assert sched.overhead_fraction(1e9) < 1e-6

    def test_integer_weights_regression(self):
        # Integer task weights used to seed an integer estimates array;
        # the in-place `estimates *= 1.0 - s` smoothing update then died
        # with a UFuncTypeError (cannot cast float64 to int64).
        g = _tasks([3, 1, 2, 5])
        sched = SemiDynamicScheduler(g, 2, reschedule_every=1,
                                     smoothing=0.5)
        schedule = sched.observe([1.0, 1.0, 1.0, 1.0])
        assert sched.estimates.dtype == float
        assert sched.estimates[0] == pytest.approx(2.0)
        assert schedule.num_workers == 2

    def test_validation(self):
        g = _tasks([1.0])
        with pytest.raises(ValueError):
            SemiDynamicScheduler(g, 1, smoothing=0.0)
        with pytest.raises(ValueError):
            SemiDynamicScheduler(g, 1, reschedule_every=0)
        sched = SemiDynamicScheduler(g, 1)
        with pytest.raises(ValueError):
            sched.observe([1.0, 2.0])
        with pytest.raises(ValueError):
            sched.observe([-1.0])


class TestListSchedule:
    def test_respects_dependencies(self):
        g = _tasks([2.0, 2.0, 1.0], deps={2: [0, 1]})
        s = list_schedule(g, 2)
        assert s.start_times[2] >= max(s.finish_times[0], s.finish_times[1])

    def test_communication_charged_cross_worker(self):
        g = _tasks([1.0, 1.0, 1.0], deps={2: [0, 1]})
        no_comm = list_schedule(g, 2, comm_latency=0.0)
        with_comm = list_schedule(g, 2, comm_latency=5.0)
        assert with_comm.makespan > no_comm.makespan

    def test_single_worker_serialises(self):
        g = _tasks([1.0, 2.0, 3.0])
        s = list_schedule(g, 1)
        assert s.makespan == pytest.approx(6.0)

    def test_independent_tasks_parallelise(self):
        g = _tasks([1.0] * 4)
        s = list_schedule(g, 4)
        assert s.makespan == pytest.approx(1.0)

    def test_empty_graph(self):
        s = list_schedule(TaskGraph([]), 3)
        assert s.makespan == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(0.1, 10.0), min_size=1, max_size=15),
        st.integers(1, 4),
    )
    def test_valid_schedule_property(self, weights, m):
        # Chain dependencies: each task depends on the previous one.
        deps = {i: [i - 1] for i in range(1, len(weights))}
        g = _tasks(weights, deps)
        s = list_schedule(g, m, comm_latency=0.05)
        # No worker overlap.
        for w in range(m):
            ids = s.tasks_of(w)
            for a, b in zip(ids, ids[1:]):
                assert s.start_times[b] >= s.finish_times[a] - 1e-12
        # Dependencies satisfied.
        for task in g:
            for dep in task.depends_on:
                assert s.start_times[task.task_id] >= (
                    s.finish_times[dep] - 1e-12
                )
        # A pure chain cannot beat the critical path.
        assert s.makespan >= g.critical_path_weight() - 1e-9


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.floats(0.01, 50.0), min_size=1, max_size=20),
    st.lists(st.floats(0.01, 50.0), min_size=1, max_size=20),
    st.integers(1, 6),
)
def test_lpt_weight_override_consistent(static_weights, override, m):
    """The weights= fast path must agree with rebuilding the graph."""
    n = min(len(static_weights), len(override))
    g = _tasks(static_weights[:n])
    fast = lpt_schedule(g, m, weights=override[:n])
    slow = lpt_schedule(g.with_weights(override[:n]), m)
    assert fast.assignment == slow.assignment
    assert fast.loads == pytest.approx(slow.loads)
