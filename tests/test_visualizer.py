"""Tests for result export (CSV) and ASCII plotting."""

import io
import math

import numpy as np
import pytest

from repro.solver import solve_ivp
from repro.visualizer import ascii_plot, plot_result, save_csv


@pytest.fixture()
def osc_result():
    def f(t, y):
        return np.array([y[1], -y[0]])

    return solve_ivp(f, (0.0, 6.0), [1.0, 0.0], method="rk45",
                     rtol=1e-8, atol=1e-11)


class TestCsv:
    def test_roundtrip(self, osc_result):
        buf = io.StringIO()
        save_csv(osc_result, ["x", "v"], buf)
        lines = buf.getvalue().splitlines()
        assert lines[0] == "t,x,v"
        assert len(lines) == len(osc_result.ts) + 1
        t, x, v = (float(c) for c in lines[-1].split(","))
        assert t == pytest.approx(6.0)
        assert x == pytest.approx(math.cos(6.0), abs=1e-6)

    def test_values_are_exact_reprs(self, osc_result):
        buf = io.StringIO()
        save_csv(osc_result, ["x", "v"], buf)
        row1 = buf.getvalue().splitlines()[1].split(",")
        assert float(row1[1]) == osc_result.ys[0, 0]

    def test_name_count_checked(self, osc_result):
        with pytest.raises(ValueError):
            save_csv(osc_result, ["only-one"], io.StringIO())

    def test_file_target(self, osc_result, tmp_path):
        path = tmp_path / "out.csv"
        save_csv(osc_result, ["x", "v"], path)
        assert path.read_text().startswith("t,x,v")


class TestAsciiPlot:
    def test_shape(self):
        ts = np.linspace(0, 1, 50)
        text = ascii_plot(ts, np.sin(2 * np.pi * ts), width=40, height=10)
        lines = text.splitlines()
        assert any("*" in l for l in lines)
        assert "└" in text
        # Extremes labelled (max of the sampled sine ≈ 1).
        assert "0.99" in lines[0] or "1" in lines[0]

    def test_constant_signal(self):
        ts = np.linspace(0, 1, 10)
        text = ascii_plot(ts, np.ones(10))
        assert "*" in text  # no division-by-zero on a flat line

    def test_label(self):
        ts = np.linspace(0, 1, 10)
        text = ascii_plot(ts, ts, label="ramp")
        assert text.splitlines()[0] == "ramp"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([0.0], [1.0])
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], [1.0, 2.0], width=2)

    def test_monotone_ramp_is_monotone_in_plot(self):
        ts = np.linspace(0, 1, 100)
        text = ascii_plot(ts, ts, width=30, height=10, label="")
        rows = [l for l in text.splitlines() if "│" in l or "┤" in l]
        cols = {}
        for r, line in enumerate(rows):
            body = line.split("┤")[-1].split("│")[-1]
            for c, ch in enumerate(body):
                if ch == "*":
                    cols.setdefault(c, r)
        ordered = [cols[c] for c in sorted(cols)]
        assert all(a >= b for a, b in zip(ordered, ordered[1:]))


class TestPlotResult:
    def test_multiple_states(self, osc_result):
        text = plot_result(osc_result, ["x", "v"], ["x", "v"])
        assert text.count("┤") >= 4
        assert "x" in text.splitlines()[0]

    def test_unknown_state(self, osc_result):
        with pytest.raises(KeyError):
            plot_result(osc_result, ["x", "v"], ["ghost"])


class TestCliIntegration:
    def test_simulate_with_csv_and_plot(self, tmp_path, capsys):
        from repro.cli import main

        model = tmp_path / "m.om"
        model.write_text(
            "MODEL m; CLASS C STATE x := 1.0;"
            " EQUATION der(x) == -x; END C;"
            " INSTANCE I INHERITS C; END m;"
        )
        csv_path = tmp_path / "run.csv"
        assert main([
            "simulate", str(model), "--t-end", "2", "--method", "rk45",
            "--csv", str(csv_path), "--plot", "I.x",
        ]) == 0
        out = capsys.readouterr().out
        assert "I.x" in out
        assert "*" in out
        assert csv_path.read_text().startswith("t,I.x")
