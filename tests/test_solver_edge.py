"""Edge-case and robustness tests for the solver substrate."""

import math

import numpy as np
import pytest

from repro.solver import (
    SolverOptions,
    adams_adaptive,
    bdf_adaptive,
    hermite_resample,
    lsoda_adaptive,
    rk45_adaptive,
    solve_ivp,
)
from repro.solver.common import Stats
from repro.solver.lsoda import estimate_spectral_radius


def decay(t, y):
    return -y


def oscillator(t, y):
    return np.array([y[1], -y[0]])


class TestBackwardIntegration:
    @pytest.mark.parametrize("method", ["rk45", "adams", "bdf", "lsoda"])
    def test_backward_decay(self, method):
        # Integrate y' = -y backwards from t=1 to t=0; y(1) = e^-1.
        r = solve_ivp(decay, (1.0, 0.0), [math.exp(-1.0)], method=method,
                      rtol=1e-8, atol=1e-11)
        assert r.success, (method, r.message)
        assert r.y_final[0] == pytest.approx(1.0, rel=1e-5)
        assert r.t_final == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("method", ["rk45", "adams", "bdf"])
    def test_backward_oscillator(self, method):
        r = solve_ivp(oscillator, (5.0, 0.0),
                      [math.cos(5.0), -math.sin(5.0)], method=method,
                      rtol=1e-8, atol=1e-11)
        assert r.success
        assert r.y_final[0] == pytest.approx(1.0, abs=1e-4)
        assert r.y_final[1] == pytest.approx(0.0, abs=1e-4)


class TestTerminationAndLimits:
    @pytest.mark.parametrize("method", ["adams", "bdf", "lsoda"])
    def test_max_steps_reported(self, method):
        r = solve_ivp(oscillator, (0.0, 1e6), [1.0, 0.0], method=method,
                      rtol=1e-10, atol=1e-13, max_steps=20)
        assert not r.success
        assert "maximum step count" in r.message

    def test_exact_endpoint_hit(self):
        for method in ("rk45", "adams", "bdf", "lsoda"):
            r = solve_ivp(decay, (0.0, 1.2345), [1.0], method=method,
                          rtol=1e-7, atol=1e-10)
            assert r.t_final == pytest.approx(1.2345, abs=1e-10), method

    def test_stats_consistency(self):
        r = solve_ivp(oscillator, (0.0, 10.0), [1.0, 0.0], method="rk45",
                      rtol=1e-7, atol=1e-10)
        s = r.stats
        assert s.nsteps == s.naccepted + s.nrejected
        assert len(r.ts) == s.naccepted + 1

    def test_bdf_counts_lu_and_jacobians(self):
        r = solve_ivp(decay, (0.0, 5.0), [1.0], method="bdf",
                      rtol=1e-8, atol=1e-11)
        assert r.stats.njev >= 1
        assert r.stats.nlu >= r.stats.njev
        assert r.stats.newton_iters > 0

    def test_lsoda_method_log_lengths(self):
        r = solve_ivp(oscillator, (0.0, 5.0), [1.0, 0.0], method="lsoda",
                      rtol=1e-6, atol=1e-9)
        assert len(r.method_log) == r.stats.naccepted


class TestSpectralRadius:
    def test_zero_rhs(self):
        def f(t, y):
            return np.zeros_like(y)

        rho = estimate_spectral_radius(f, 0.0, np.ones(3), np.zeros(3))
        assert rho == pytest.approx(0.0, abs=1e-6)

    def test_scaling_invariance(self):
        A = np.diag([-3.0, -7.0])

        def f(t, y):
            return A @ y

        rho_small = estimate_spectral_radius(
            f, 0.0, np.array([1e-8, 1e-8]), f(0.0, np.array([1e-8, 1e-8]))
        )
        rho_large = estimate_spectral_radius(
            f, 0.0, np.array([1e6, 1e6]), f(0.0, np.array([1e6, 1e6]))
        )
        assert rho_small == pytest.approx(7.0, rel=0.1)
        assert rho_large == pytest.approx(7.0, rel=0.1)


class TestResampling:
    def test_multistep_with_t_eval(self):
        t_eval = np.linspace(0.0, 5.0, 11)
        r = solve_ivp(oscillator, (0.0, 5.0), [1.0, 0.0], method="adams",
                      rtol=1e-9, atol=1e-12, t_eval=t_eval)
        assert np.allclose(r.ys[:, 0], np.cos(t_eval), atol=1e-5)

    def test_endpoints_included(self):
        r = solve_ivp(decay, (0.0, 1.0), [1.0], method="rk45",
                      rtol=1e-9, atol=1e-12, t_eval=[0.0, 1.0])
        assert r.ys[0, 0] == pytest.approx(1.0)
        assert r.ys[1, 0] == pytest.approx(math.exp(-1.0), rel=1e-7)

    def test_backward_resampling(self):
        t_eval = [0.8, 0.5, 0.2]
        r = solve_ivp(decay, (1.0, 0.0), [math.exp(-1.0)], method="rk45",
                      rtol=1e-9, atol=1e-12, t_eval=t_eval)
        assert np.allclose(r.ys[:, 0], np.exp(-np.asarray(t_eval)),
                           rtol=1e-6)


class TestStiffnessStress:
    def test_strongly_damped_linear(self):
        # y' = -1000 (y - cos t) - sin t; solution tends to cos t.
        def f(t, y):
            return np.array([-1000.0 * (y[0] - math.cos(t)) - math.sin(t)])

        r = solve_ivp(f, (0.0, 3.0), [0.0], method="lsoda",
                      rtol=1e-6, atol=1e-9)
        assert r.success
        assert r.y_final[0] == pytest.approx(math.cos(3.0), abs=1e-4)
        # An explicit method would need ~h < 2/1000 steps: ~1500 minimum.
        assert r.stats.naccepted < 1200

    def test_bdf_high_order_reached(self):
        from repro.solver.bdf import BdfStepper
        from repro.solver.common import SolverOptions, Stats

        stats = Stats()
        stepper = BdfStepper(
            decay, 0.0, np.array([1.0]), 1.0,
            SolverOptions(rtol=1e-10, atol=1e-13), stats,
        )
        for _ in range(200):
            if not stepper.step(50.0):
                break
        assert stepper.order >= 3
