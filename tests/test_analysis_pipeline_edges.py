"""Edge-case coverage for analysis/pipeline.simulate_pipeline.

Covers the branches the main suites never reach: a single-stage DAG
(pipelining degenerates to sequential execution), all-zero stage costs
(the ``speedup == inf`` branch), and communication latency dominating the
makespan on a dependency chain.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import simulate_pipeline
from repro.analysis.depgraph import DiGraph, VariableAssignment
from repro.analysis.partition import Partition, Subsystem


def _chain_partition(n: int) -> Partition:
    """A hand-built n-stage dependency chain 0 → 1 → … → n-1."""
    condensed = DiGraph()
    for i in range(n):
        condensed.add_node(i)
    for i in range(1, n):
        condensed.add_edge(i - 1, i)
    subsystems = [
        Subsystem(
            index=i,
            variables=(f"v{i}",),
            equations=(f"e{i}",),
            level=i,
            predecessors=(i - 1,) if i > 0 else (),
            successors=(i + 1,) if i < n - 1 else (),
        )
        for i in range(n)
    ]
    return Partition(
        subsystems=subsystems,
        membership={f"v{i}": i for i in range(n)},
        condensed=condensed,
        assignment=VariableAssignment(
            defining={f"v{i}": f"e{i}" for i in range(n)},
            uses={f"e{i}": frozenset() for i in range(n)},
        ),
    )


class TestSingleStageDag:
    def test_pipelining_degenerates_to_sequential(self):
        part = _chain_partition(1)
        report = simulate_pipeline(part, [2.0], num_steps=5)
        assert report.num_stages == 1
        assert report.sequential_time == pytest.approx(10.0)
        assert report.pipelined_time == pytest.approx(10.0)
        assert report.speedup == pytest.approx(1.0)
        assert report.bottleneck_cost == pytest.approx(2.0)

    def test_single_stage_latency_is_irrelevant(self):
        part = _chain_partition(1)
        report = simulate_pipeline(part, [2.0], num_steps=5,
                                   comm_latency=100.0)
        # No DAG edges, so per-edge latency is never charged.
        assert report.pipelined_time == pytest.approx(10.0)

    def test_costs_accepted_as_mapping(self):
        part = _chain_partition(1)
        report = simulate_pipeline(part, {0: 3.0}, num_steps=2)
        assert report.stage_costs == (3.0,)
        assert report.sequential_time == pytest.approx(6.0)


class TestZeroCostStages:
    def test_all_zero_costs_give_infinite_speedup(self):
        part = _chain_partition(3)
        report = simulate_pipeline(part, [0.0, 0.0, 0.0], num_steps=10)
        assert report.pipelined_time == 0.0
        assert report.sequential_time == 0.0
        assert math.isinf(report.speedup)
        assert report.speedup > 0
        assert report.bottleneck_cost == 0.0

    def test_zero_costs_with_latency_are_not_infinite(self):
        part = _chain_partition(2)
        report = simulate_pipeline(part, [0.0, 0.0], num_steps=4,
                                   comm_latency=1.0)
        # The edge latency still serialises the chain; speedup is 0/x = 0.
        assert report.pipelined_time == pytest.approx(1.0)
        assert report.speedup == 0.0

    def test_str_renders_infinite_speedup(self):
        part = _chain_partition(1)
        report = simulate_pipeline(part, [0.0], num_steps=1)
        assert "inf" in str(report)


class TestCommLatencyDominates:
    def test_chain_makespan_formula(self):
        # Two stages of cost 1 with latency 100: the first result crosses
        # the link once (start-up), after which the bottleneck stage paces
        # the pipeline — makespan = latency + stage0 + num_steps * stage1.
        part = _chain_partition(2)
        steps = 5
        report = simulate_pipeline(part, [1.0, 1.0], num_steps=steps,
                                   comm_latency=100.0)
        assert report.pipelined_time == pytest.approx(100.0 + 1.0 + steps)
        assert report.sequential_time == pytest.approx(2.0 * steps)
        assert report.speedup < 1.0  # latency makes pipelining a loss

    def test_latency_free_chain_approaches_bottleneck_rate(self):
        part = _chain_partition(2)
        report = simulate_pipeline(part, [1.0, 1.0], num_steps=5)
        assert report.pipelined_time == pytest.approx(1.0 + 5.0)
        assert report.speedup == pytest.approx(10.0 / 6.0)

    def test_latency_charged_per_edge_on_deeper_chains(self):
        part = _chain_partition(3)
        one = simulate_pipeline(part, [1.0, 1.0, 1.0], num_steps=1,
                                comm_latency=10.0)
        # One step through a 3-chain: each of the two edges pays latency.
        assert one.pipelined_time == pytest.approx(3 * 1.0 + 2 * 10.0)


class TestValidation:
    def test_num_steps_must_be_positive(self):
        with pytest.raises(ValueError, match="num_steps"):
            simulate_pipeline(_chain_partition(1), [1.0], num_steps=0)

    def test_wrong_cost_count_rejected(self):
        with pytest.raises(ValueError, match="expected 2 stage costs"):
            simulate_pipeline(_chain_partition(2), [1.0], num_steps=1)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            simulate_pipeline(_chain_partition(1), [-1.0], num_steps=1)
