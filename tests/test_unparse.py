"""Unparser tests: model → source → model round trips."""

import numpy as np
import pytest

from repro.apps import (
    BearingParams,
    build_bearing2d,
    build_powerplant,
    build_servo,
)
from repro.codegen import make_ode_system
from repro.language import load_model, unparse_expr, unparse_model
from repro.model import Model, ModelClass, VecType
from repro.symbolic import (
    Const,
    Rel,
    Sym,
    evaluate,
    if_then_else,
    sin,
    sqrt,
    symbols,
)

x, y, z = symbols("x y z")


def _roundtrip_equivalent(model, point_scale=0.04, seed=0):
    """Assert flatten(parse(unparse(model))) ≡ flatten(model) numerically."""
    text = unparse_model(model)
    reparsed = load_model(text)
    f1 = make_ode_system(model.flatten())
    f2 = make_ode_system(reparsed.flatten())
    assert f1.state_names == f2.state_names
    assert f1.param_names == f2.param_names
    assert f1.start_values == pytest.approx(f2.start_values)
    assert f1.param_values == pytest.approx(f2.param_values)
    rng = np.random.default_rng(seed)
    env = {
        n: v
        for n, v in zip(
            f1.state_names, rng.normal(point_scale, 0.01, f1.num_states)
        )
    }
    env.update(dict(zip(f1.param_names, f1.param_values)))
    env[f1.free_var] = 0.3
    for name, a, b in zip(f1.state_names, f1.rhs, f2.rhs):
        va, vb = evaluate(a, env), evaluate(b, env)
        assert va == pytest.approx(vb, rel=1e-12, abs=1e-12), name
    return text


class TestExprUnparse:
    @pytest.mark.parametrize(
        "expr",
        [
            x + y * z,
            (x + y) ** 2 / (z + 4),
            -x ** 2 + 3,
            sin(x) * sqrt(y * y + 1),
            if_then_else(x.gt(0), x, -x) * 2 + 1,
            if_then_else(Rel("<=", x, y), x + 1, y - 1),
            x / y / (z + 2),
            2 ** (x + 1),
        ],
    )
    def test_expression_roundtrip(self, expr):
        from repro.language.parser import _Parser
        from repro.language.lexer import tokenize

        text = unparse_expr(expr)
        parsed = _Parser(tokenize(text + ";")).parse_side()
        env = {"x": 0.7, "y": 1.3, "z": -0.4}
        assert evaluate(parsed, env) == pytest.approx(
            evaluate(expr, env), rel=1e-12
        )

    def test_equality_rel_rejected(self):
        with pytest.raises(ValueError, match="not expressible"):
            unparse_expr(Rel("==", x, y))


class TestModelRoundtrips:
    def test_servo(self, servo_model):
        text = _roundtrip_equivalent(servo_model, point_scale=0.5)
        assert "CLASS Servo" in text
        assert "INSTANCE Servo INHERITS Servo" in text

    def test_powerplant(self, powerplant_model):
        text = _roundtrip_equivalent(powerplant_model, point_scale=5.0)
        assert text.count("INHERITS TurbineGroup") == 6

    def test_bearing(self):
        model = build_bearing2d(BearingParams(num_rollers=3))
        text = _roundtrip_equivalent(model)
        assert "CLASS Roller INHERITS SpinningBody" in text
        assert "der(r) == v" in text  # vector shorthand survived

    def test_vector_members_and_overrides(self):
        cls = ModelClass("Body")
        r = cls.state("r", start=[1.0, 2.0], mtype=VecType(2))
        v = cls.state("v", start=[0.0, 0.0], mtype=VecType(2))
        cls.ode(r, v)
        cls.ode(v, r * -1.0)
        model = Model("m")
        model.instance("P", cls, overrides={"r": [3.0, 4.0]})
        text = _roundtrip_equivalent(model, point_scale=1.0)
        assert "STATE r[2] := {1.0, 2.0};" in text
        assert "(r := {3.0, 4.0})" in text

    def test_composition(self):
        inner = ModelClass("Inner")
        w = inner.state("w", start=1.0)
        inner.ode(w, -w)
        outer = ModelClass("Outer")
        outer.part("p", inner)
        model = Model("m")
        model.instance("O", outer)
        text = _roundtrip_equivalent(model, point_scale=1.0)
        assert "PART p : Inner;" in text

    def test_duplicate_class_names_rejected(self):
        a1 = ModelClass("Same")
        a1.state("x", start=0.0)
        a1.ode(a1.member("x"), -a1.member("x"))
        a2 = ModelClass("Same")
        a2.state("y", start=0.0)
        a2.ode(a2.member("y"), -a2.member("y"))
        model = Model("m")
        model.instance("A", a1)
        model.instance("B", a2)
        with pytest.raises(ValueError, match="duplicate class"):
            unparse_model(model)

    def test_nonconforming_labels_dropped(self):
        cls = ModelClass("C")
        cls.state("x", start=1.0)
        from repro.symbolic import Der

        cls.equation(Der(Sym("x")), -Sym("x"), label="weird label!")
        model = Model("m")
        model.instance("I", cls)
        text = unparse_model(model)
        assert "weird" not in text
        load_model(text)  # still parses


from hypothesis import given, settings  # noqa: E402

from .strategies import expressions  # noqa: E402


@settings(max_examples=120, deadline=None)
@given(expressions())
def test_random_expression_unparse_roundtrip(expr):
    """unparse → tokenize → parse preserves meaning for any expressible
    expression."""
    import math

    from repro.language.lexer import tokenize
    from repro.language.parser import _Parser
    from repro.symbolic import EvalError, evaluate

    text = unparse_expr(expr)
    parsed = _Parser(tokenize(text + ";")).parse_side()
    env = {"x": 0.61, "y": -1.2, "z": 2.3}
    try:
        expected = evaluate(expr, env)
    except EvalError:
        return
    got = evaluate(parsed, env)
    if math.isnan(expected):
        assert math.isnan(got)
        return
    scale = max(abs(expected), abs(got), 1.0)
    assert abs(expected - got) <= 1e-9 * scale, text
