"""Two compiler processes racing on one on-disk artifact cache.

Satellite of the crash-consistency work: concurrent compiles of the same
model hash from separate processes against a shared cache root must leave
exactly one clean, parseable artifact — no torn files, no leaked temp or
lock files — regardless of interleaving.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

_WORKER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.compiler import ArtifactCache, CompileOptions, compile_context

source = '''
MODEL raceosc;
CLASS Osc
  STATE x := 1.0;
  STATE v := 0.0;
  PARAMETER k := 4.0;
  EQUATION Eq[1] := der(x) == v;
  EQUATION Eq[2] := der(v) == -k * x;
END Osc;
INSTANCE A INHERITS Osc;
END raceosc;
'''

cache = ArtifactCache({root!r}, lock_timeout=20.0)
keys = set()
for _ in range({rounds}):
    # drop_memory each round so every iteration exercises the on-disk
    # path (load -> miss/hit -> store), not the in-process table
    cache.drop_memory()
    ctx = compile_context(source=source, options=CompileOptions(cache=cache))
    keys.add(ctx.cache_key)
assert len(keys) == 1, keys
print(json.dumps({{"key": keys.pop(), "hits": cache.hits,
                   "misses": cache.misses}}))
"""


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX flock semantics")
def test_concurrent_compiles_share_one_clean_artifact(tmp_path):
    root = tmp_path / "cache"
    script = _WORKER.format(src=str(SRC_DIR), root=str(root), rounds=5)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for _ in range(2)
    ]
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        outputs.append(json.loads(out))

    # both processes resolved the same content-addressed key
    assert outputs[0]["key"] == outputs[1]["key"]
    key = outputs[0]["key"]

    # exactly one clean artifact, parseable, and nothing leaked
    artifact = root / f"{key}.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text())
    assert payload["key"] == key
    assert not [p for p in root.iterdir() if p.name.endswith(".tmp")]
    locks = root / "locks"
    assert not (locks.exists() and list(locks.glob("*.lock")))
    quarantine = root / "quarantine"
    assert not (quarantine.exists() and list(quarantine.glob("*")))

    # and a third, fresh process-equivalent can hit it cold
    sys.path.insert(0, str(SRC_DIR))
    from repro.compiler import ArtifactCache

    cache = ArtifactCache(root)
    assert cache.load(key) is not None
    assert cache.hits == 1


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX flock semantics")
def test_reader_during_writer_never_sees_torn_artifact(tmp_path):
    """A reader polling the artifact path while a writer repeatedly
    stores must only ever observe complete JSON (atomic publication)."""
    root = tmp_path / "cache"
    writer_script = _WORKER.format(src=str(SRC_DIR), root=str(root),
                                   rounds=8)
    writer = subprocess.Popen(
        [sys.executable, "-c", writer_script],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    torn = 0
    observed = 0
    try:
        while writer.poll() is None:
            for path in (root.glob("*.json") if root.exists() else ()):
                try:
                    json.loads(path.read_text())
                    observed += 1
                except (ValueError, OSError):
                    torn += 1
    finally:
        out, err = writer.communicate(timeout=120)
    assert writer.returncode == 0, err
    assert torn == 0
    assert observed > 0  # the poll actually raced the writer
