"""Back-end tests: generated Python numerics, Fortran/C artifacts, start
files, and the program facade."""

import io
import math

import numpy as np
import pytest

from repro.codegen import (
    apply_start_file,
    generate_c,
    generate_fortran,
    generate_program,
    generate_python,
    make_ode_system,
    partition_tasks,
    read_start_file,
    write_start_file,
)
from repro.codegen.gen_python import NameTable
from repro.model import Model, ModelClass
from repro.schedule import lpt_schedule
from repro.symbolic import evaluate


class TestNameTable:
    def test_sanitisation(self):
        names = NameTable()
        assert names("W1.F.x") == "W1_F_x"
        assert names("part:state:0") == "part_state_0"

    def test_stability(self):
        names = NameTable()
        assert names("a.b") == names("a.b")

    def test_collision_avoidance(self):
        names = NameTable()
        first = names("a.b")
        second = names("a_b")
        assert first != second

    def test_reserved_names_avoided(self):
        names = NameTable()
        assert names("t") != "t"
        assert names("y") != "y"

    def test_keyword_suffixed(self):
        names = NameTable()
        assert names("lambda") == "lambda_"

    def test_leading_digit(self):
        names = NameTable()
        assert names("0weird")[0].isalpha() or names("0weird")[0] == "v"


class TestGeneratedPython:
    def test_rhs_matches_reference_evaluation(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        system = compiled_small_bearing.system
        rng = np.random.default_rng(42)
        p = program.param_vector()
        param_env = dict(zip(system.param_names, p))
        for _ in range(5):
            y = program.start_vector() + rng.normal(0, 1e-4, system.num_states)
            out = program.rhs(0.37, y, p)
            env = {**param_env, **dict(zip(system.state_names, y)), "t": 0.37}
            for i, rhs in enumerate(system.rhs):
                assert out[i] == pytest.approx(
                    evaluate(rhs, env), rel=1e-9, abs=1e-9
                ), system.state_names[i]

    def test_tasks_match_serial_rhs(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        rng = np.random.default_rng(7)
        p = program.param_vector()
        for _ in range(3):
            y = program.start_vector() + rng.normal(0, 1e-4, program.num_states)
            serial = program.rhs(0.0, y, p)
            res = program.results_buffer()
            from repro.runtime import dependency_levels

            for level in dependency_levels(program.task_graph):
                for tid in level:
                    program.eval_task(tid, 0.0, y, p, res)
            assert np.allclose(res[: program.num_states], serial,
                               rtol=1e-12, atol=1e-12)

    def test_jacobian_matches_finite_difference(self, compiled_servo):
        program = compiled_servo.program
        jac = program.make_jac()
        f = program.make_rhs()
        y = program.start_vector() + 0.1
        J = jac(0.0, y)
        n = program.num_states
        h = 1e-7
        for j in range(n):
            yp = y.copy()
            yp[j] += h
            col = (f(0.0, yp) - f(0.0, y)) / h
            assert np.allclose(J[:, j], col, rtol=1e-4, atol=1e-5)

    def test_start_and_params_functions(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        system = compiled_small_bearing.system
        assert program.start_vector() == pytest.approx(
            np.array(system.start_values)
        )
        assert program.param_vector() == pytest.approx(
            np.array(system.param_values)
        )

    def test_cse_counts_recorded(self, compiled_bearing):
        module = compiled_bearing.program.module
        # Per-task CSE cannot share across tasks, so it extracts at least
        # as many temporaries as global CSE (section 3.3's effect).
        assert module.num_cse_parallel >= module.num_cse_serial > 0

    def test_module_source_is_importable_text(self, compiled_small_bearing):
        source = compiled_small_bearing.program.module.source
        compiled = compile(source, "<test>", "exec")
        assert compiled is not None


class TestFortran:
    def test_figure11_artifact_shape(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        plan = partition_tasks(system, group_threshold=0.0,
                               split_threshold=float("inf"))
        f90 = generate_fortran(system, plan)
        assert "subroutine RHS(workerid, t, yin, p, yout)" in f90.source
        assert "select case (workerid)" in f90.source
        assert "dot = " in f90.source  # derivatives become *dot variables
        assert "end subroutine RHS" in f90.source
        assert "subroutine START(y0)" in f90.source

    def test_serial_mode_no_cases(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        f90 = generate_fortran(system, mode="serial")
        assert "select case" not in f90.source
        assert "subroutine RHS(t, yin, p, yout)" in f90.source

    def test_schedule_merges_cases(self, compiled_small_bearing):
        system = compiled_small_bearing.system
        plan = compiled_small_bearing.program.plan
        schedule = lpt_schedule(plan.graph, 2)
        f90 = generate_fortran(system, plan, schedule=schedule)
        # one `case (k)` per worker ("select case (workerid)" excluded)
        assert f90.source.count("\n  case (") == 2

    def test_parallel_cse_exceeds_serial(self, compiled_bearing):
        system = compiled_bearing.system
        plan = compiled_bearing.program.plan
        par = generate_fortran(system, plan, mode="parallel")
        ser = generate_fortran(system, plan, mode="serial")
        assert par.num_cse >= ser.num_cse
        assert par.num_lines > ser.num_lines
        assert par.num_declaration_lines > 0

    def test_mode_validation(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        with pytest.raises(ValueError):
            generate_fortran(system, mode="hpf")


class TestC:
    def test_parallel_switch(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        plan = partition_tasks(system, group_threshold=0.0,
                               split_threshold=float("inf"))
        c = generate_c(system, plan)
        assert "switch (workerid)" in c.source
        assert "#include <math.h>" in c.source
        assert c.source.count("case ") == plan.num_tasks

    def test_serial_straight_line(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        c = generate_c(system, mode="serial")
        assert "switch" not in c.source

    def test_no_duplicate_declarations_per_case(self, compiled_small_bearing):
        system = compiled_small_bearing.system
        plan = compiled_small_bearing.program.plan
        schedule = lpt_schedule(plan.graph, 2)
        c = generate_c(system, plan, schedule=schedule)
        # Within each case block, each const double is declared once.
        for block in c.source.split("case ")[1:]:
            body = block.split("break;")[0]
            names = [
                line.split("=")[0].strip().rsplit(" ", 1)[-1]
                for line in body.splitlines()
                if line.strip().startswith("const double")
            ]
            assert len(names) == len(set(names)), block[:200]


class TestStartFiles:
    def test_roundtrip(self, oscillator_model, tmp_path):
        system = make_ode_system(oscillator_model.flatten())
        path = tmp_path / "start.txt"
        write_start_file(system, path)
        values = read_start_file(path)
        assert values["A.x"] == 1.0
        assert values["B.k"] == 9.0

    def test_apply_overrides(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        y0, params = apply_start_file(system, {"A.x": 5.0, "A.k": 100.0})
        assert y0[system.state_index("A.x")] == 5.0
        assert dict(zip(system.param_names, params))["A.k"] == 100.0

    def test_unknown_name_strict(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        with pytest.raises(KeyError):
            apply_start_file(system, {"ghost": 1.0})
        y0, _ = apply_start_file(system, {"ghost": 1.0}, strict=False)
        assert len(y0) == 4

    def test_parse_errors(self):
        with pytest.raises(ValueError, match="name = value"):
            read_start_file(io.StringIO("garbage line\n"))
        with pytest.raises(ValueError, match="bad number"):
            read_start_file(io.StringIO("x = notanumber\n"))
        with pytest.raises(ValueError, match="duplicate"):
            read_start_file(io.StringIO("x = 1\nx = 2\n"))

    def test_comments_and_blanks(self):
        values = read_start_file(
            io.StringIO("# header\n\nx = 1.5  # inline\n")
        )
        assert values == {"x": 1.5}


class TestProgramFacade:
    def test_make_rhs_closure(self, compiled_servo):
        f = compiled_servo.program.make_rhs()
        y = compiled_servo.program.start_vector()
        out = f(0.0, y)
        assert out.shape == y.shape

    def test_custom_params(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        program = generate_program(system)
        p = program.param_vector()
        p[list(system.param_names).index("A.k")] = 100.0
        f = program.make_rhs(p)
        y = np.array([1.0, 0.0, 0.0, 0.0])
        out = f(0.0, y)
        assert out[system.state_index("A.v")] == pytest.approx(-100.0)

    def test_no_jacobian_by_default(self, compiled_small_bearing):
        assert compiled_small_bearing.program.make_jac() is None
