"""Application-model tests: structure (SCCs matching the paper), physics
sanity, and short simulations."""

import math

import numpy as np
import pytest

from repro.analysis import partition
from repro.apps import (
    Bearing3dParams,
    BearingParams,
    build_bearing2d,
    build_bearing3d,
    build_powerplant,
    build_servo,
    PlantParams,
    ServoParams,
)
from repro.codegen import make_ode_system
from repro.frontend import compile_model
from repro.solver import solve_ivp
from repro.symbolic import op_count


class TestBearingStructure:
    def test_two_sccs_like_paper(self, bearing_model):
        """Section 6: 'the 2D bearing model only yielded two SCCs, where
        all the computation was embedded in one of them.'"""
        part = partition(bearing_model.flatten())
        assert part.num_subsystems == 2
        sizes = sorted(len(s.variables) for s in part.subsystems)
        assert sizes[0] == 1  # the inner-ring angle
        main = part.largest()
        assert "Ir.phi" not in main.variables
        assert sizes[1] >= 50

    def test_state_count(self, bearing_model):
        flat = bearing_model.flatten()
        # 6 ring states + 5 per roller.
        assert flat.num_states == 6 + 5 * 10

    def test_square_system(self, bearing_model):
        flat = bearing_model.flatten()
        assert flat.num_equations == flat.num_states + len(flat.algebraics)

    def test_heavy_rhs(self, bearing_model):
        system = make_ode_system(bearing_model.flatten())
        total = sum(op_count(rhs) for rhs in system.rhs)
        assert total > 5000  # "several tens of thousands" in the 1995 F90

    def test_conditional_contacts_present(self, bearing_model):
        from repro.symbolic import ITE, preorder

        system = make_ode_system(bearing_model.flatten())
        has_conditionals = any(
            isinstance(node, ITE)
            for rhs in system.rhs
            for node in preorder(rhs)
        )
        assert has_conditionals  # drives the semi-dynamic LPT story

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BearingParams(num_rollers=0)
        with pytest.raises(ValueError):
            BearingParams(inner_raceway_radius=0.06,
                          outer_raceway_radius=0.04)
        with pytest.raises(ValueError):
            BearingParams(roller_radius=0.05)  # does not fit the gap


class TestBearingPhysics:
    def test_ring_settles_under_load(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        f = program.make_rhs()
        r = solve_ivp(f, (0.0, 0.02), program.start_vector(),
                      method="rk45", rtol=1e-6, atol=1e-9)
        assert r.success
        iy = compiled_small_bearing.system.state_index("Ir.r.y")
        # Radial load points down: the ring moves down, but stays small
        # (stiff contacts; the 4-roller fixture is softer than 10 rollers).
        assert -1e-2 < r.y_final[iy] < 0.0

    def test_drive_torque_spins_ring(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        f = program.make_rhs()
        r = solve_ivp(f, (0.0, 0.02), program.start_vector(),
                      method="rk45", rtol=1e-6, atol=1e-9)
        iw = compiled_small_bearing.system.state_index("Ir.w")
        assert r.y_final[iw] > 0.0

    def test_phi_integrates_w(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        f = program.make_rhs()
        r = solve_ivp(f, (0.0, 0.01), program.start_vector(),
                      method="rk45", rtol=1e-7, atol=1e-10)
        iphi = compiled_small_bearing.system.state_index("Ir.phi")
        iw = compiled_small_bearing.system.state_index("Ir.w")
        # phi(T) = integral of w; with w growing ~linearly from 0,
        # phi ≈ w(T) * T / 2 (rough physical consistency check).
        assert r.y_final[iphi] == pytest.approx(
            r.y_final[iw] * 0.01 / 2, rel=0.5
        )

    def test_rollers_stay_in_annulus(self, compiled_small_bearing):
        program = compiled_small_bearing.program
        system = compiled_small_bearing.system
        f = program.make_rhs()
        r = solve_ivp(f, (0.0, 0.02), program.start_vector(),
                      method="rk45", rtol=1e-6, atol=1e-9)
        p = BearingParams(num_rollers=4)
        for i in range(1, 5):
            ix = system.state_index(f"W{i}.r.x")
            iy = system.state_index(f"W{i}.r.y")
            radius = math.hypot(r.y_final[ix], r.y_final[iy])
            assert p.inner_raceway_radius * 0.8 < radius
            assert radius < p.outer_raceway_radius * 1.2

    def test_no_load_symmetric_start_is_equilibrium_free(self):
        # With no gravity, load, or drive, the symmetric start produces
        # zero derivatives for roller positions (everything balanced).
        params = BearingParams(
            num_rollers=4, gravity=0.0, drive_torque=0.0, radial_load=0.0
        )
        compiled = compile_model(build_bearing2d(params))
        f = compiled.program.make_rhs()
        out = f(0.0, compiled.program.start_vector())
        assert np.allclose(out, 0.0, atol=1e-9)


class TestPowerPlant:
    def test_scc_structure(self, powerplant_model):
        part = partition(powerplant_model.flatten())
        # 6 group SCCs + 6 rotor SCCs + regulator + gate cmd + gate angle
        # + dam block: many SCCs on several levels (Figure 3's shape).
        assert part.num_subsystems >= 10
        assert part.num_levels >= 3
        # The dam must come after everything it drains.
        dam = next(s for s in part.subsystems
                   if "Dam.SurfaceLevel" in s.variables)
        assert dam.level == part.num_levels - 1

    def test_group_count_parametrised(self):
        part = partition(build_powerplant(PlantParams(num_groups=3)).flatten())
        group_sccs = [
            s for s in part.subsystems
            if any(v.startswith("G") and ".q" in v for v in s.variables)
        ]
        assert len(group_sccs) == 3

    def test_simulation_stable(self, compiled_powerplant):
        program = compiled_powerplant.program
        f = program.make_rhs()
        r = solve_ivp(f, (0.0, 500.0), program.start_vector(),
                      method="lsoda", rtol=1e-6, atol=1e-9,
                      jac=program.make_jac())
        assert r.success
        level = r.y_final[compiled_powerplant.system.state_index(
            "Dam.SurfaceLevel")]
        assert 0.0 < level < 100.0

    def test_flow_approaches_setpoint(self, compiled_powerplant):
        program = compiled_powerplant.program
        f = program.make_rhs()
        r = solve_ivp(f, (0.0, 2000.0), program.start_vector(),
                      method="lsoda", rtol=1e-7, atol=1e-10)
        assert r.success
        q1 = r.y_final[compiled_powerplant.system.state_index("G1.q")]
        assert q1 == pytest.approx(150.0, rel=0.1)


class TestServo:
    def test_chain_sccs(self, servo_model):
        part = partition(servo_model.flatten())
        assert part.num_subsystems == 5
        assert part.num_levels == 5  # a pure chain

    def test_tracks_reference(self, compiled_servo):
        program = compiled_servo.program
        f = program.make_rhs()
        r = solve_ivp(f, (0.0, 3.0), program.start_vector(),
                      method="lsoda", rtol=1e-7, atol=1e-10)
        assert r.success
        theta = r.y_final[compiled_servo.system.state_index("Servo.theta")]
        meas = r.y_final[compiled_servo.system.state_index("Sensor.meas")]
        assert theta == pytest.approx(1.0, abs=0.05)
        assert meas == pytest.approx(theta, abs=0.01)


class TestBearing3d:
    def test_scaling_increases_ops(self):
        small = make_ode_system(
            build_bearing3d(Bearing3dParams(num_rollers=6,
                                            contact_harmonics=0)).flatten()
        )
        big = make_ode_system(
            build_bearing3d(Bearing3dParams(num_rollers=6,
                                            contact_harmonics=8)).flatten()
        )
        small_ops = sum(op_count(r) for r in small.rhs)
        big_ops = sum(op_count(r) for r in big.rhs)
        # 8 harmonics x ~12 ops x 3 equations per roller of extra work.
        assert big_ops > small_ops + 8 * 10 * 3 * 6 / 2
        assert big_ops > 1.2 * small_ops

    def test_roller_count_scales_states(self):
        flat = build_bearing3d(
            Bearing3dParams(num_rollers=12, contact_harmonics=0)
        ).flatten()
        assert flat.num_states == 6 + 5 * 12

    def test_harmonics_nearly_neutral_numerically(self):
        base = compile_model(build_bearing3d(
            Bearing3dParams(num_rollers=4, contact_harmonics=0)))
        rich = compile_model(build_bearing3d(
            Bearing3dParams(num_rollers=4, contact_harmonics=5)))
        y0 = base.program.start_vector()
        a = base.program.make_rhs()(0.0, y0)
        b = rich.program.make_rhs()(0.0, y0)
        # The 1e-9-amplitude series passes through 1/J ~ 4e5 on the spin
        # equations, so "neutral" means small against the ~1e3 dynamics.
        assert np.allclose(a, b, atol=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Bearing3dParams(contact_harmonics=-1)


class TestBearingInvariants:
    @pytest.mark.parametrize("n", [1, 2, 5, 8])
    def test_two_sccs_for_any_roller_count(self, n):
        part = partition(build_bearing2d(BearingParams(num_rollers=n)).flatten())
        assert part.num_subsystems == 2
        assert min(len(s.variables) for s in part.subsystems) == 1

    def test_lsoda_full_transient_agrees_with_rk45(self, compiled_bearing):
        """The paper's workflow: LSODA driving the generated bearing RHS.
        Cross-check the end state against RK45."""
        f = compiled_bearing.program.make_rhs()
        y0 = compiled_bearing.program.start_vector()
        a = solve_ivp(f, (0.0, 0.02), y0, method="rk45",
                      rtol=1e-7, atol=1e-10)
        b = solve_ivp(f, (0.0, 0.02), y0, method="lsoda",
                      rtol=1e-7, atol=1e-10)
        assert a.success and b.success
        iw = compiled_bearing.system.state_index("Ir.w")
        assert a.y_final[iw] == pytest.approx(b.y_final[iw], rel=1e-3)
