"""Unit tests for the expression AST and canonicalising constructors."""

import math

import pytest

from repro.symbolic import (
    Add,
    BoolOp,
    Call,
    Const,
    Der,
    ITE,
    Mul,
    Pow,
    Rel,
    Sym,
    add,
    as_expr,
    count_nodes,
    div,
    free_symbols,
    mul,
    neg,
    postorder,
    pow_,
    preorder,
    sub,
    symbols,
)

x, y, z = symbols("x y z")


class TestConst:
    def test_int_kept_exact(self):
        assert Const(3).value == 3
        assert isinstance(Const(3).value, int)

    def test_float_canonicalised_to_int(self):
        assert Const(2.0).value == 2
        assert isinstance(Const(2.0).value, int)

    def test_non_integral_float_kept(self):
        assert Const(2.5).value == 2.5

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            Const(True)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            Const("3")  # type: ignore[arg-type]

    def test_equality_across_int_float(self):
        assert Const(2) == Const(2.0)
        assert hash(Const(2)) == hash(Const(2.0))


class TestSym:
    def test_name(self):
        assert Sym("foo").name == "foo"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Sym("")

    def test_equality_and_hash(self):
        assert Sym("a") == Sym("a")
        assert Sym("a") != Sym("b")
        assert hash(Sym("a")) == hash(Sym("a"))

    def test_not_equal_to_const(self):
        assert Sym("a") != Const(1)


class TestAdd:
    def test_flattening(self):
        e = add(x, add(y, z))
        assert isinstance(e, Add)
        assert len(e.args) == 3

    def test_constant_folding(self):
        assert add(Const(2), Const(3)) == Const(5)

    def test_zero_identity(self):
        assert add(x, Const(0)) == x

    def test_like_terms_collected(self):
        assert add(x, x) == mul(Const(2), x)
        assert add(x, mul(Const(2), x)) == mul(Const(3), x)

    def test_cancellation(self):
        assert add(x, neg(x)) == Const(0)

    def test_empty_sum_is_zero(self):
        assert add() == Const(0)

    def test_single_term_unwrapped(self):
        assert add(x) is x

    def test_deterministic_order(self):
        assert add(x, y) == add(y, x)
        assert hash(add(x, y)) == hash(add(y, x))

    def test_coefficient_zero_removed(self):
        e = add(mul(Const(2), x), mul(Const(-2), x), y)
        assert e == y

    def test_mixed_constants_collected(self):
        e = add(Const(1), x, Const(2))
        assert isinstance(e, Add)
        assert Const(3) in e.args


class TestMul:
    def test_flattening(self):
        e = mul(x, mul(y, z))
        assert isinstance(e, Mul)
        assert len(e.args) == 3

    def test_constant_folding(self):
        assert mul(Const(2), Const(3)) == Const(6)

    def test_zero_annihilates(self):
        assert mul(x, Const(0)) == Const(0)

    def test_one_identity(self):
        assert mul(x, Const(1)) == x

    def test_powers_merged(self):
        assert mul(x, x) == pow_(x, Const(2))
        assert mul(x, pow_(x, Const(2))) == pow_(x, Const(3))

    def test_power_cancellation(self):
        assert mul(x, pow_(x, Const(-1))) == Const(1)

    def test_empty_product_is_one(self):
        assert mul() == Const(1)

    def test_deterministic_order(self):
        assert mul(x, y) == mul(y, x)


class TestPow:
    def test_zero_exponent(self):
        assert pow_(x, Const(0)) == Const(1)

    def test_one_exponent(self):
        assert pow_(x, Const(1)) is x

    def test_one_base(self):
        assert pow_(Const(1), x) == Const(1)

    def test_zero_base_positive_exponent(self):
        assert pow_(Const(0), Const(3)) == Const(0)

    def test_zero_base_symbolic_exponent_kept(self):
        e = pow_(Const(0), x)
        assert isinstance(e, Pow)

    def test_constant_folding(self):
        assert pow_(Const(2), Const(10)) == Const(1024)

    def test_negative_base_fractional_exponent_kept_symbolic(self):
        e = pow_(Const(-2), Const(0.5))
        assert isinstance(e, Pow)

    def test_nested_power_combined(self):
        e = pow_(pow_(x, Const(2)), Const(3))
        assert e == pow_(x, Const(6))

    def test_huge_integer_power_becomes_float(self):
        e = pow_(Const(10), Const(30))
        assert isinstance(e, Const)
        assert isinstance(e.value, float)


class TestDivNeg:
    def test_div_by_constant_becomes_multiplication(self):
        e = div(x, Const(4))
        assert e == mul(Const(0.25), x)

    def test_div_by_symbol(self):
        e = div(x, y)
        assert e == mul(x, pow_(y, Const(-1)))

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            div(x, Const(0))

    def test_neg(self):
        assert neg(x) == mul(Const(-1), x)
        assert neg(Const(3)) == Const(-3)

    def test_sub(self):
        assert sub(x, x) == Const(0)


class TestOperators:
    def test_python_operators(self):
        assert (x + y) == add(x, y)
        assert (x - y) == sub(x, y)
        assert (x * y) == mul(x, y)
        assert (x / y) == div(x, y)
        assert (x**2) == pow_(x, Const(2))
        assert (-x) == neg(x)
        assert (+x) is x

    def test_reflected_operators(self):
        assert (2 + x) == add(Const(2), x)
        assert (2 - x) == sub(Const(2), x)
        assert (2 * x) == mul(Const(2), x)
        assert (2 / x) == div(Const(2), x)
        assert (2**x) == pow_(Const(2), x)

    def test_relational_builders(self):
        assert x.lt(y) == Rel("<", x, y)
        assert x.le(0) == Rel("<=", x, Const(0))
        assert x.gt(y) == Rel(">", x, y)
        assert x.ge(y) == Rel(">=", x, y)


class TestOtherNodes:
    def test_call_arity_preserved(self):
        e = Call("atan2", (x, y))
        assert e.fn == "atan2"
        assert e.args == (x, y)

    def test_der(self):
        d = Der(x)
        assert d.expr is x
        assert Der(x) == Der(x)

    def test_rel_bad_op(self):
        with pytest.raises(ValueError):
            Rel("<>", x, y)

    def test_boolop_validation(self):
        with pytest.raises(ValueError):
            BoolOp("xor", [x, y])
        with pytest.raises(ValueError):
            BoolOp("not", [x, y])
        with pytest.raises(ValueError):
            BoolOp("and", [x])

    def test_ite_args(self):
        e = ITE(Rel("<", x, y), x, y)
        assert e.cond == Rel("<", x, y)
        assert e.then is x
        assert e.orelse is y


class TestTraversal:
    def test_preorder_parent_first(self):
        e = add(x, mul(y, z))
        nodes = list(preorder(e))
        assert nodes[0] is e
        assert len(nodes) == count_nodes(e)

    def test_postorder_children_first(self):
        e = add(x, mul(y, z))
        nodes = list(postorder(e))
        assert nodes[-1] is e

    def test_free_symbols(self):
        e = add(x, mul(y, Const(2)), Call("sin", (x,)))
        assert free_symbols(e) == frozenset({x, y})

    def test_free_symbols_of_leaf(self):
        assert free_symbols(x) == frozenset({x})
        assert free_symbols(Const(1)) == frozenset()


class TestWithArgs:
    def test_add_rebuild(self):
        e = add(x, y)
        rebuilt = e.with_args((x, x))
        assert rebuilt == mul(Const(2), x)

    def test_pow_rebuild(self):
        e = pow_(x, Const(2))
        assert e.with_args((y, Const(3))) == pow_(y, Const(3))

    def test_leaf_rejects_children(self):
        with pytest.raises(ValueError):
            Sym("a").with_args((x,))


def test_as_expr():
    assert as_expr(3) == Const(3)
    assert as_expr(2.5) == Const(2.5)
    assert as_expr(x) is x
    with pytest.raises(TypeError):
        as_expr("oops")  # type: ignore[arg-type]


def test_internal_constructors_guarded():
    with pytest.raises(RuntimeError):
        Add((x, y))
    with pytest.raises(RuntimeError):
        Mul((x, y))
    with pytest.raises(RuntimeError):
        Pow(x, y)
