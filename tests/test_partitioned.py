"""Tests of the partitioned (subsystem-level) solver — the executable
form of the paper's equation-system-level parallelism."""

import math

import numpy as np
import pytest

from repro.codegen import generate_program, make_ode_system
from repro.model import Model, ModelClass
from repro.solver import Signal, solve_ivp, solve_partitioned


class TestSignal:
    def test_hermite_exact_for_cubic(self):
        ts = np.linspace(0.0, 2.0, 9)
        ys = ts**3 - ts
        dys = 3 * ts**2 - 1
        sig = Signal(ts, ys, dys)
        for t in (0.13, 0.77, 1.5, 1.99):
            assert sig(t) == pytest.approx(t**3 - t, abs=1e-12)

    def test_clamping_outside_range(self):
        sig = Signal(np.array([0.0, 1.0]), np.array([2.0, 5.0]),
                     np.array([0.0, 0.0]))
        assert sig(-1.0) == 2.0
        assert sig(2.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Signal(np.array([0.0]), np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            Signal(np.array([0.0, 1.0]), np.array([1.0]), np.array([0.0]))


def _chain_model():
    """ref -> filter chain with closed-form pieces."""
    shaper = ModelClass("Shaper")
    r = shaper.state("r", start=0.0)
    shaper.ode(r, 1.0 - r)  # r(t) = 1 - e^-t
    follower = ModelClass("Follower")
    follower.state("y", start=0.0)
    model = Model("chain")
    sh = model.instance("S", shaper)
    fo = model.instance("F", follower)
    model.ode(fo.sym("y"), sh.sym("r") - fo.sym("y"))
    return model


class TestSolvePartitioned:
    def test_matches_monolithic_on_chain(self):
        system = make_ode_system(_chain_model().flatten())
        program = generate_program(system)
        mono = solve_ivp(program.make_rhs(), (0.0, 4.0),
                         program.start_vector(), method="rk45",
                         rtol=1e-9, atol=1e-12)
        part = solve_partitioned(system, (0.0, 4.0), method="rk45",
                                 rtol=1e-9, atol=1e-12)
        assert part.success
        assert np.allclose(part.y_final, mono.y_final, atol=1e-6)

    def test_closed_form_accuracy(self):
        # y' = (1 - e^-t) - y, y(0)=0  =>  y = 1 - (1+t) e^-t.
        system = make_ode_system(_chain_model().flatten())
        part = solve_partitioned(system, (0.0, 4.0), method="rk45",
                                 rtol=1e-9, atol=1e-12)
        iy = system.state_names.index("F.y")
        exact = 1.0 - (1.0 + 4.0) * math.exp(-4.0)
        assert part.y_final[iy] == pytest.approx(exact, abs=1e-6)

    def test_independent_step_sizes(self):
        # Fast oscillator + slow decay, structurally independent.
        fast = ModelClass("Fast")
        x = fast.state("x", start=1.0)
        v = fast.state("v", start=0.0)
        fast.ode(x, v)
        fast.ode(v, -400.0 * x)
        slow = ModelClass("Slow")
        s = slow.state("s", start=1.0)
        slow.ode(s, -0.05 * s)
        model = Model("two")
        model.instance("F", fast)
        model.instance("S", slow)
        system = make_ode_system(model.flatten())
        part = solve_partitioned(system, (0.0, 10.0), method="rk45",
                                 rtol=1e-7, atol=1e-10)
        assert part.success
        fast_run = part.run_for("F.x")
        slow_run = part.run_for("S.s")
        assert slow_run.mean_step > 20 * fast_run.mean_step
        i_s = system.state_names.index("S.s")
        assert part.y_final[i_s] == pytest.approx(math.exp(-0.5), abs=1e-6)

    def test_levels_and_structure(self, compiled_powerplant):
        system = compiled_powerplant.system
        part = solve_partitioned(system, (0.0, 50.0), method="lsoda",
                                 rtol=1e-6, atol=1e-9)
        assert part.success
        assert len(part.levels) >= 2
        # Level-0 subsystems are mutually independent.
        level0_states = set()
        for idx in part.levels[0]:
            run = next(r for r in part.runs if r.index == idx)
            level0_states.update(run.state_names)
        assert "Dam.SurfaceLevel" not in level0_states

    def test_matches_monolithic_on_powerplant(self, compiled_powerplant):
        system = compiled_powerplant.system
        program = compiled_powerplant.program
        mono = solve_ivp(program.make_rhs(), (0.0, 200.0),
                         program.start_vector(), method="lsoda",
                         rtol=1e-8, atol=1e-11)
        part = solve_partitioned(system, (0.0, 200.0), method="lsoda",
                                 rtol=1e-8, atol=1e-11)
        assert part.success
        assert np.allclose(part.y_final, mono.y_final,
                           rtol=1e-4, atol=1e-6)

    def test_custom_y0(self):
        system = make_ode_system(_chain_model().flatten())
        part = solve_partitioned(system, (0.0, 1.0),
                                 y0=[0.5, 0.0], method="rk45",
                                 rtol=1e-9, atol=1e-12)
        ir = system.state_names.index("S.r")
        exact = 1.0 - 0.5 * math.exp(-1.0)
        assert part.y_final[ir] == pytest.approx(exact, abs=1e-7)

    def test_wrong_y0_length(self):
        system = make_ode_system(_chain_model().flatten())
        with pytest.raises(ValueError):
            solve_partitioned(system, (0.0, 1.0), y0=[1.0])

    def test_summary_text(self):
        system = make_ode_system(_chain_model().flatten())
        part = solve_partitioned(system, (0.0, 1.0))
        text = part.summary()
        assert "subsystem" in text
        assert "mean h" in text

    def test_single_scc_degenerates_to_monolithic(self, oscillator_model):
        # Each oscillator is one SCC; two independent SCCs total.
        system = make_ode_system(oscillator_model.flatten())
        part = solve_partitioned(system, (0.0, 2.0), method="rk45",
                                 rtol=1e-9, atol=1e-12)
        assert len(part.runs) == 2
        ix = system.state_names.index("A.x")
        assert part.y_final[ix] == pytest.approx(math.cos(4.0), abs=1e-7)
