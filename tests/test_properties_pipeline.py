"""Property-based tests of the whole code-generation pipeline.

The central invariant: for *any* expressible ODE system, the generated
program (serial RHS, per-task functions under any schedule, and the
emitted Python text) computes exactly what the symbolic reference
evaluation computes.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import OdeSystem, generate_program, partition_tasks
from repro.runtime import SerialExecutor, dependency_levels
from repro.schedule import lpt_schedule
from repro.symbolic import EvalError, Sym, evaluate

from .strategies import expressions

_STATE_NAMES = tuple(f"s{i}" for i in range(4))


@st.composite
def ode_systems(draw):
    """Random small ODE systems over states s0..s3 (mapped from x,y,z)."""
    n = draw(st.integers(2, 4))
    mapping = {
        Sym("x"): Sym(_STATE_NAMES[0]),
        Sym("y"): Sym(_STATE_NAMES[1 % n]),
        Sym("z"): Sym(_STATE_NAMES[min(2, n - 1)]),
    }
    from repro.symbolic import substitute

    rhs = []
    for _ in range(n):
        e = draw(expressions(max_depth=3))
        rhs.append(substitute(e, mapping))
    starts = tuple(
        draw(st.floats(-2.0, 2.0, allow_nan=False)) for _ in range(n)
    )
    return OdeSystem(
        name="prop",
        free_var="t",
        state_names=_STATE_NAMES[:n],
        param_names=(),
        rhs=tuple(rhs),
        start_values=starts,
        param_values=(),
    )


def _reference(system, t, y):
    env = dict(zip(system.state_names, y))
    env["t"] = t
    out = []
    for rhs in system.rhs:
        out.append(evaluate(rhs, env))
    return np.array(out)


@settings(max_examples=60, deadline=None)
@given(ode_systems(), st.floats(-2.0, 2.0, allow_nan=False))
def test_generated_rhs_matches_reference(system, t):
    program = generate_program(system)
    y = program.start_vector()
    try:
        expected = _reference(system, t, y)
    except EvalError:
        return
    got = program.rhs(t, y, program.param_vector())
    assert np.allclose(got, expected, rtol=1e-12, atol=1e-12, equal_nan=True)


@settings(max_examples=40, deadline=None)
@given(ode_systems(), st.integers(1, 4))
def test_task_execution_matches_reference(system, workers):
    # Force splitting and grouping to exercise both paths.
    plan = partition_tasks(system, group_threshold=1e-7,
                           split_threshold=5e-8)
    program = generate_program(system, group_threshold=1e-7,
                               split_threshold=5e-8)
    y = program.start_vector()
    try:
        expected = _reference(system, 0.0, y)
    except EvalError:
        return
    # Any LPT schedule must produce the same numbers.
    schedule = lpt_schedule(program.task_graph, workers)
    res = program.results_buffer()
    for level in dependency_levels(program.task_graph):
        ordered = sorted(level, key=lambda tid: schedule.assignment[tid])
        for tid in ordered:
            program.eval_task(tid, 0.0, y, program.param_vector(), res)
    assert np.allclose(res[: program.num_states], expected,
                       rtol=1e-12, atol=1e-12, equal_nan=True)


@settings(max_examples=30, deadline=None)
@given(ode_systems())
def test_serial_executor_matches_module_rhs(system):
    program = generate_program(system)
    executor = SerialExecutor(program)
    y = program.start_vector()
    p = program.param_vector()
    res = program.results_buffer()
    try:
        executor.evaluate(0.0, y, p, res)
        direct = program.rhs(0.0, y, p)
    except (ArithmeticError, ValueError):
        return
    assert np.allclose(res[: program.num_states], direct,
                       rtol=1e-12, atol=1e-12, equal_nan=True)


@settings(max_examples=30, deadline=None)
@given(ode_systems())
def test_serialization_roundtrip_property(system):
    from repro.symbolic.serialize import system_from_obj, system_to_obj

    rebuilt = system_from_obj(system_to_obj(system))
    assert rebuilt.rhs == system.rhs
    assert rebuilt.state_names == system.state_names
    assert rebuilt.start_values == pytest.approx(system.start_values)
