"""Expression transformer and verifier tests."""

import pytest

from repro.codegen import (
    OdeSystem,
    TransformError,
    VerifyError,
    make_ode_system,
    solve_linear,
    verify_compilable,
)
from repro.model import Model, ModelClass
from repro.model.flatten import ImplicitEquation
from repro.symbolic import Call, Const, Der, Sym, evaluate, sin


class TestMakeOdeSystem:
    def test_oscillators(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        assert system.num_states == 4
        assert system.state_names == ("A.x", "A.v", "B.x", "B.v")
        assert system.start_values == (1.0, 0.0, 2.0, 0.0)
        assert system.param_map() == {"A.k": 4.0, "B.k": 9.0}

    def test_algebraics_inlined(self):
        cls = ModelClass("C")
        x = cls.state("x", start=1.0)
        a = cls.algebraic("a")
        cls.equation(a, 3 * x)
        cls.ode(x, a + 1)
        model = Model("m")
        model.instance("I", cls)
        system = make_ode_system(model.flatten())
        assert evaluate(system.rhs[0], {"I.x": 2.0}) == pytest.approx(7.0)

    def test_linear_implicit_solved(self):
        cls = ModelClass("C")
        x = cls.state("x", start=1.0)
        a = cls.algebraic("a")
        # 2a + x = a + 5  ->  a = 5 - x
        cls.equation(2 * a + x, a + 5)
        cls.ode(x, a)
        model = Model("m")
        model.instance("I", cls)
        system = make_ode_system(model.flatten())
        assert evaluate(system.rhs[0], {"I.x": 2.0}) == pytest.approx(3.0)

    def test_nonlinear_implicit_rejected(self):
        cls = ModelClass("C")
        x = cls.state("x", start=1.0)
        a = cls.algebraic("a")
        cls.equation(a * a, x)  # nonlinear in a
        cls.ode(x, a)
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(TransformError, match="nonlinear"):
            make_ode_system(model.flatten())

    def test_implicit_state_equation_rejected(self):
        cls = ModelClass("C")
        x = cls.state("x", start=1.0)
        y = cls.state("y", start=0.0)
        cls.ode(x, y)
        cls.equation(x + y, Const(1))  # would implicitly determine a state
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten(check=False)
        with pytest.raises(TransformError, match="state"):
            make_ode_system(flat)

    def test_coefficient_in_terms_of_parameter(self):
        cls = ModelClass("C")
        x = cls.state("x", start=1.0)
        a = cls.algebraic("a")
        k = cls.parameter("k", 2.0)
        cls.equation(k * a, x)  # a = x / k
        cls.ode(x, a)
        model = Model("m")
        model.instance("I", cls)
        system = make_ode_system(model.flatten())
        assert evaluate(
            system.rhs[0], {"I.x": 6.0, "I.k": 2.0}
        ) == pytest.approx(3.0)


class TestSolveLinear:
    def test_simple(self):
        a = Sym("a")
        x = Sym("x")
        eq = ImplicitEquation(2 * a + x, a + 5, "e")
        solution = solve_linear(eq, "a")
        assert evaluate(solution, {"x": 2.0}) == pytest.approx(3.0)

    def test_zero_coefficient(self):
        a = Sym("a")
        eq = ImplicitEquation(a - a + 1, Const(0), "e")
        with pytest.raises(TransformError, match="zero"):
            solve_linear(eq, "a")

    def test_nonlinear_via_function(self):
        a = Sym("a")
        eq = ImplicitEquation(sin(a), Const(0), "e")
        with pytest.raises(TransformError):
            solve_linear(eq, "a")


class TestVerify:
    def test_clean_system_passes(self, oscillator_model):
        system = make_ode_system(oscillator_model.flatten())
        report = verify_compilable(system)
        assert report.num_rhs == 4
        assert "A.x" in report.symbols_used

    def test_unknown_symbol_caught(self):
        system = OdeSystem(
            name="bad", free_var="t", state_names=("x",),
            param_names=(), rhs=(Sym("ghost"),),
            start_values=(0.0,), param_values=(),
        )
        with pytest.raises(VerifyError, match="unknown symbol"):
            verify_compilable(system)

    def test_unknown_function_caught(self):
        system = OdeSystem(
            name="bad", free_var="t", state_names=("x",),
            param_names=(), rhs=(Call("bessel", (Sym("x"),)),),
            start_values=(0.0,), param_values=(),
        )
        with pytest.raises(VerifyError, match="unknown function"):
            verify_compilable(system)

    def test_surviving_der_caught(self):
        system = OdeSystem(
            name="bad", free_var="t", state_names=("x",),
            param_names=(), rhs=(Der(Sym("x")),),
            start_values=(0.0,), param_values=(),
        )
        with pytest.raises(VerifyError, match="derivative"):
            verify_compilable(system)

    def test_functions_reported(self, small_bearing_model):
        system = make_ode_system(small_bearing_model.flatten())
        report = verify_compilable(system)
        assert "sqrt" in report.functions_used
        assert "tanh" in report.functions_used
