"""Flattening tests: qualification, vectors, composition, classification,
validation, inlining, parameter binding."""

import pytest

from repro.model import (
    AlgebraicLoopError,
    Model,
    ModelClass,
    ModelError,
    VecType,
    check_types,
    flatten_model,
)
from repro.model.typecheck import TypeError_
from repro.symbolic import Call, Const, Der, Sym, evaluate, vec2


def _oscillator():
    osc = ModelClass("Osc")
    x = osc.state("x", start=1.0)
    v = osc.state("v", start=0.0)
    k = osc.parameter("k", 4.0)
    osc.ode(x, v)
    osc.ode(v, -k * x)
    return osc


class TestQualification:
    def test_names_prefixed(self, oscillator_model):
        flat = oscillator_model.flatten()
        assert set(flat.states) == {"A.x", "A.v", "B.x", "B.v"}
        assert set(flat.parameters) == {"A.k", "B.k"}

    def test_equation_labels_prefixed(self, oscillator_model):
        flat = oscillator_model.flatten()
        labels = {eq.label for eq in flat.odes}
        assert "A.Kin" in labels and "B.Dyn" in labels

    def test_overrides_applied(self, oscillator_model):
        flat = oscillator_model.flatten()
        assert flat.parameters["B.k"].value == 9.0
        assert flat.states["B.x"].start == 2.0
        assert flat.parameters["A.k"].value == 4.0

    def test_free_variable_not_qualified(self):
        cls = ModelClass("C")
        x = cls.state("x")
        cls.ode(x, Sym("t") - x)
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten()
        rhs = flat.odes[0].rhs
        from repro.symbolic import free_symbols

        assert Sym("t") in free_symbols(rhs)

    def test_absolute_references_untouched(self):
        cls = ModelClass("C")
        x = cls.state("x")
        cls.ode(x, Sym("Other.y") - x)
        model = Model("m")
        model.instance("I", cls)
        other = ModelClass("O")
        other.state("y")
        o = model.instance("Other", other)
        model.ode(o.sym("y"), -o.sym("y"))
        flat = model.flatten()
        rhs = {eq.state: eq.rhs for eq in flat.odes}["I.x"]
        from repro.symbolic import free_symbols

        assert Sym("Other.y") in free_symbols(rhs)


class TestVectorExpansion:
    def test_components_expanded(self):
        cls = ModelClass("C")
        r = cls.state("r", start=[1.0, 2.0], mtype=VecType(2))
        v = cls.state("v", start=[0.0, 0.0], mtype=VecType(2))
        cls.ode(r, v)
        cls.ode(v, vec2(0, -9.81))
        model = Model("m")
        model.instance("P", cls)
        flat = model.flatten()
        assert set(flat.states) == {"P.r.x", "P.r.y", "P.v.x", "P.v.y"}
        assert flat.states["P.r.y"].start == 2.0
        assert len(flat.odes) == 4

    def test_vec3_suffixes(self):
        cls = ModelClass("C")
        r = cls.state("r", start=[1, 2, 3], mtype=VecType(3))
        cls.ode(r, vec2(0, 0, 0) if False else r * 0)
        model = Model("m")
        model.instance("P", cls)
        flat = model.flatten()
        assert "P.r.z" in flat.states


class TestComposition:
    def test_part_expansion(self):
        wheel = ModelClass("Wheel")
        w = wheel.state("w", start=1.0)
        wheel.ode(w, -w)
        car = ModelClass("Car")
        car.part("front", wheel)
        car.part("rear", wheel)
        model = Model("m")
        model.instance("C", car)
        flat = model.flatten()
        assert set(flat.states) == {"C.front.w", "C.rear.w"}

    def test_part_reference_from_owner(self):
        inner = ModelClass("Inner")
        inner.state("x", start=1.0)
        inner.ode(inner.member("x"), -inner.member("x"))
        outer = ModelClass("Outer")
        outer.part("p", inner)
        y = outer.state("y")
        outer.ode(y, Sym("p.x"))
        model = Model("m")
        model.instance("O", outer)
        flat = model.flatten()
        rhs = {eq.state: eq.rhs for eq in flat.odes}["O.y"]
        assert rhs == Sym("O.p.x")


class TestClassification:
    def test_swapped_ode_recognised(self):
        cls = ModelClass("C")
        x = cls.state("x")
        cls.equation(-x, Der(x))  # rhs and lhs swapped
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten()
        assert len(flat.odes) == 1
        assert flat.odes[0].state == "I.x"

    def test_duplicate_ode_rejected(self):
        cls = ModelClass("C")
        x = cls.state("x")
        cls.ode(x, -x)
        cls.ode(x, x)
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(ModelError, match="more than one ODE"):
            model.flatten()

    def test_der_of_non_state_rejected(self):
        cls = ModelClass("C")
        cls.algebraic("a")
        cls.equation(Der(Sym("a")), Const(1))
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(ModelError, match="not a declared state"):
            model.flatten()

    def test_explicit_algebraic(self):
        cls = ModelClass("C")
        x = cls.state("x")
        a = cls.algebraic("a")
        cls.equation(a, 2 * x)
        cls.ode(x, a)
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten()
        assert len(flat.explicit_algs) == 1
        assert flat.explicit_algs[0].var == "I.a"

    def test_self_referencing_algebraic_is_implicit(self):
        cls = ModelClass("C")
        x = cls.state("x")
        a = cls.algebraic("a")
        cls.equation(a, a * 0.5 + x)
        cls.ode(x, a)
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten()
        assert len(flat.implicit) == 1


class TestValidation:
    def test_undeclared_symbol(self):
        cls = ModelClass("C")
        x = cls.state("x")
        cls.ode(x, Sym("ghost"))
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(ModelError, match="undeclared"):
            model.flatten()

    def test_state_without_ode(self):
        cls = ModelClass("C")
        cls.state("x")
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(ModelError):
            model.flatten()

    def test_non_square(self):
        cls = ModelClass("C")
        x = cls.state("x")
        cls.algebraic("a")
        cls.ode(x, -x)
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(ModelError, match="square"):
            model.flatten()

    def test_check_false_skips_validation(self):
        cls = ModelClass("C")
        cls.state("x")
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten(check=False)
        assert flat.num_states == 1


class TestInlining:
    def test_chain_inlined_in_order(self):
        cls = ModelClass("C")
        x = cls.state("x", start=1.0)
        a = cls.algebraic("a")
        b = cls.algebraic("b")
        cls.equation(a, 2 * x)
        cls.equation(b, a + 1)
        cls.ode(x, b)
        model = Model("m")
        model.instance("I", cls)
        inlined = model.flatten().inline_algebraics()
        assert not inlined.explicit_algs
        rhs = inlined.odes[0].rhs
        assert evaluate(rhs, {"I.x": 3.0}) == pytest.approx(7.0)

    def test_algebraic_loop_detected(self):
        cls = ModelClass("C")
        x = cls.state("x")
        a = cls.algebraic("a")
        b = cls.algebraic("b")
        cls.equation(a, b + 1)
        cls.equation(b, a - 1)
        cls.ode(x, a)
        model = Model("m")
        model.instance("I", cls)
        with pytest.raises(AlgebraicLoopError) as info:
            model.flatten().inline_algebraics()
        assert set(info.value.cycle) >= {"I.a", "I.b"}


class TestBindParameters:
    def test_values_substituted(self, oscillator_model):
        flat = oscillator_model.flatten().bind_parameters()
        assert not flat.parameters
        rhs = {eq.state: eq.rhs for eq in flat.odes}["B.v"]
        assert evaluate(rhs, {"B.x": 1.0}) == pytest.approx(-9.0)


class TestTypecheck:
    def test_clean_model_passes(self, oscillator_model):
        report = check_types(oscillator_model.flatten())
        assert report.num_checked_equations == 4
        assert report.annotation("A.x") == "om$Real"

    def test_nested_der_rejected(self):
        cls = ModelClass("C")
        x = cls.state("x")
        y = cls.state("y")
        cls.ode(x, y)
        cls.equation(Der(x * y) + Der(y), -y)  # Der of a product
        model = Model("m")
        model.instance("I", cls)
        flat = model.flatten(check=False)
        with pytest.raises(TypeError_):
            check_types(flat)

    def test_start_vector_order(self, oscillator_model):
        flat = oscillator_model.flatten()
        starts = dict(zip(flat.states, flat.start_vector()))
        assert starts["A.x"] == 1.0
        assert starts["B.x"] == 2.0
