"""Property-based tests of the symbolic engine (hypothesis).

Core invariant: every transformation pass — canonicalisation, simplify,
expand, CSE, code generation — is *meaning-preserving* under numeric
evaluation at random points.
"""

import math

import pytest
from hypothesis import given, settings

from repro.symbolic import (
    EvalError,
    Sym,
    code,
    cse,
    diff,
    evaluate,
    expand,
    infix,
    simplify,
)

from .strategies import assert_equivalent, environments, expressions


@settings(max_examples=150, deadline=None)
@given(expressions(), environments())
def test_simplify_preserves_meaning(expr, env):
    assert_equivalent(expr, simplify(expr), env)


@settings(max_examples=150, deadline=None)
@given(expressions(), environments())
def test_expand_preserves_meaning(expr, env):
    assert_equivalent(expr, expand(expr), env, rtol=1e-6)


@settings(max_examples=100, deadline=None)
@given(expressions(), expressions(), environments())
def test_cse_preserves_meaning(a, b, env):
    result = cse([a, b])
    temp_env = dict(env)
    originals = []
    rewrittens = []
    try:
        for temp, definition in result.replacements:
            temp_env[temp.name] = evaluate(definition, temp_env)
        for original, rewritten in zip((a, b), result.exprs):
            originals.append(evaluate(original, env))
            rewrittens.append(evaluate(rewritten, temp_env))
    except EvalError:
        return  # domain error: nothing to compare
    for vo, vr in zip(originals, rewrittens):
        if math.isnan(vo) or math.isnan(vr):
            continue
        scale = max(abs(vo), abs(vr), 1.0)
        assert abs(vo - vr) <= 1e-9 * scale


@settings(max_examples=100, deadline=None)
@given(expressions(), environments())
def test_infix_python_roundtrip(expr, env):
    """Printed Python code evaluates to the same value as the AST."""
    import repro.codegen.gen_python as gp

    namespace = gp._base_namespace()
    text = code(expr, "python")
    try:
        reference = evaluate(expr, env)
    except EvalError:
        return
    value = eval(text, namespace, dict(env))
    if math.isnan(reference):
        assert math.isnan(value)
        return
    scale = max(abs(reference), abs(value), 1.0)
    assert abs(value - reference) <= 1e-9 * scale


@settings(max_examples=80, deadline=None)
@given(expressions(max_depth=3), environments())
def test_diff_matches_finite_difference(expr, env):
    """Symbolic derivative ≈ central finite difference (where smooth)."""
    h = 1e-6
    sym = Sym("x")
    try:
        d = diff(expr, sym)
    except Exception:
        return
    lo = dict(env)
    hi = dict(env)
    lo["x"] -= h
    hi["x"] += h
    try:
        analytic = evaluate(d, env)
        f_hi = evaluate(expr, hi)
        f_lo = evaluate(expr, lo)
        f_mid = evaluate(expr, env)
    except EvalError:
        return
    numeric = (f_hi - f_lo) / (2 * h)
    if any(math.isnan(v) or math.isinf(v)
           for v in (analytic, numeric, f_mid)):
        return
    # Skip points near a conditional/abs kink, where the one-sided values
    # disagree with the smooth extension.
    second = abs(f_hi - 2 * f_mid + f_lo) / h**2
    if second > 1e3:
        return
    scale = max(abs(analytic), abs(numeric), 1.0)
    assert abs(analytic - numeric) <= 1e-3 * scale


@settings(max_examples=150, deadline=None)
@given(expressions())
def test_canonical_forms_hash_consistently(expr):
    rebuilt = expr.with_args(tuple(expr.args)) if expr.args else expr
    assert rebuilt == expr
    assert hash(rebuilt) == hash(expr)


@settings(max_examples=100, deadline=None)
@given(expressions())
def test_simplify_idempotent(expr):
    once = simplify(expr)
    twice = simplify(once)
    assert once == twice
