"""Native C backend (``backend="c"``): agreement, caching, degradation.

The acceptance bar for the native backend is *bit-level trust*: the same
model compiled natively must agree with the Python backend to 1e-12 on
the RHS, every task slot, and the sparse SCC-block analytic Jacobian
(against the scalarized dense oracle), across serial/threaded executors
and fused/unfused plans, on all four example apps.  The build layer is
tested for content-addressed reuse (< 50 ms warm path), bounded on-disk
growth (eviction events), and graceful degradation to the Python backend
when the machine has no C toolchain — a structured diagnostic, never a
traceback.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps.bearing2d import BearingParams, build_bearing2d
from repro.apps.bearing3d import Bearing3dParams, build_bearing3d
from repro.apps.powerplant import build_powerplant
from repro.apps.servo import build_servo
from repro.codegen import native as native_layer
from repro.codegen.gen_c import NativeSource, generate_c_tasks
from repro.codegen.native import (
    NativeCache,
    NativeUnavailable,
    build_native_module,
    find_compiler,
    load_native_module,
)
from repro.compiler import ArtifactCache, CompileOptions, compile_context
from repro.frontend import compile_model
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    ParallelRHS,
    RuntimeEvents,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.solver import solve_ivp

HAS_CC = find_compiler() is not None
needs_cc = pytest.mark.skipif(not HAS_CC, reason="no C compiler on PATH")

TOL = 1e-12

_BUILDERS = {
    "servo": build_servo,
    "powerplant": build_powerplant,
    "bearing2d": lambda: build_bearing2d(BearingParams(num_rollers=4)),
    "bearing3d": lambda: build_bearing3d(
        Bearing3dParams(num_rollers=4, contact_harmonics=2)
    ),
}
APPS = tuple(_BUILDERS)


@pytest.fixture(scope="module", autouse=True)
def _isolated_native_cache(tmp_path_factory):
    """Point the default native cache at a per-run directory."""
    root = tmp_path_factory.mktemp("native-cache")
    old = os.environ.get("REPRO_NATIVE_CACHE")
    os.environ["REPRO_NATIVE_CACHE"] = str(root)
    yield root
    if old is None:
        os.environ.pop("REPRO_NATIVE_CACHE", None)
    else:
        os.environ["REPRO_NATIVE_CACHE"] = old


@pytest.fixture(scope="module")
def programs():
    """(app, fuse) → (python program, native program), compiled once."""
    cache: dict = {}

    def get(app: str, fuse: bool = True):
        key = (app, fuse)
        if key not in cache:
            model = _BUILDERS[app]()
            py = compile_model(model, jacobian=True, fuse=fuse).program
            c = compile_model(
                model, jacobian=True, fuse=fuse, backend="c"
            ).program
            cache[key] = (py, c)
        return cache[key]

    return get


def _probe_states(program, count: int = 3):
    """Deterministic off-equilibrium probe points."""
    y0 = program.start_vector()
    rng = np.random.default_rng(42)
    for k in range(count):
        yield 0.1 + 0.3 * k, y0 + 0.05 * rng.standard_normal(y0.size)


def _evaluate(executor_cls, program, t, y, num_workers=2):
    res = program.results_buffer()
    if executor_cls is SerialExecutor:
        SerialExecutor(program).evaluate(
            t, y, program.param_vector(), res
        )
        return res
    with executor_cls(program, num_workers) as executor:
        executor.evaluate(t, y, program.param_vector(), res)
    return res


@needs_cc
class TestNumericalAgreement:
    @pytest.mark.parametrize("app", APPS)
    def test_rhs_agreement(self, programs, app):
        py, c = programs(app)
        assert c.native_module is not None, c.native_fallback_reason
        assert c.backend == "c"
        for t, y in _probe_states(py):
            got = c.rhs(t, y)
            want = py.rhs(t, y)
            scale = np.maximum(np.abs(want), 1.0)
            assert np.all(np.abs(got - want) <= TOL * scale)

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("fuse", [True, False],
                             ids=["fused", "unfused"])
    @pytest.mark.parametrize(
        "executor_cls", [SerialExecutor, ThreadedExecutor],
        ids=["serial", "thread"],
    )
    def test_task_agreement_across_executors(
        self, programs, app, fuse, executor_cls
    ):
        """Every results-vector slot (states + partials) agrees."""
        py, c = programs(app, fuse)
        assert c.native_module is not None
        assert c.num_tasks == py.num_tasks
        t, y = next(_probe_states(py))
        res_c = _evaluate(executor_cls, c, t, y)
        res_py = _evaluate(SerialExecutor, py, t, y)
        scale = np.maximum(np.abs(res_py), 1.0)
        assert np.all(np.abs(res_c - res_py) <= TOL * scale)

    @pytest.mark.parametrize("app", APPS)
    def test_sparse_jacobian_vs_dense_oracle(self, programs, app):
        """Native sparse JAC == the scalarized dense Python oracle."""
        py, c = programs(app)
        assert c.native_module is not None
        assert c.native_module.jac_sparse is not None
        jac_c = c.make_jac()
        jac_py = py.make_jac()
        src = c.native_module.native
        n = py.num_states
        pattern = set(zip(src.jac_rows, src.jac_cols))
        for t, y in _probe_states(py):
            got = jac_c(t, y)
            want = jac_py(t, y)
            scale = np.maximum(np.abs(want), 1.0)
            assert np.all(np.abs(got - want) <= TOL * scale)
            # Entries outside the sparse pattern are structural zeros in
            # the oracle too: the pattern is exact, not conservative.
            mask = np.ones((n, n), dtype=bool)
            for i, j in pattern:
                mask[i, j] = False
            assert np.all(want[mask] == 0.0)

    def test_end_to_end_solve_agreement(self, programs):
        py, c = programs("bearing2d")
        sol_py = solve_ivp(
            py.make_rhs(), (0.0, 0.05), py.start_vector(), method="rk4",
            max_step=1e-3,
        )
        sol_c = solve_ivp(
            c.make_rhs(), (0.0, 0.05), c.start_vector(), method="rk4",
            max_step=1e-3,
        )
        # Fixed-step RK4 runs the identical step sequence, so the only
        # divergence source would be the RHS itself.
        assert np.allclose(sol_c.ys, sol_py.ys, rtol=1e-9, atol=1e-12)


@needs_cc
class TestSparsePattern:
    def test_pattern_grouped_by_scc_block(self):
        cm = compile_model(
            _BUILDERS["bearing2d"](), jacobian=True, backend="c"
        )
        src = cm.program.native_module.native
        membership = cm.partition.membership
        state_names = cm.system.state_names
        block_seq = [
            membership[state_names[i]] for i in src.jac_rows
        ]
        # Rows are visited one SCC block at a time: the block id sequence
        # never revisits an earlier block.
        seen: list = []
        for b in block_seq:
            if not seen or seen[-1] != b:
                assert b not in seen
                seen.append(b)

    def test_nnz_is_sparse_on_bearing(self):
        cm = compile_model(
            _BUILDERS["bearing2d"](), jacobian=True, backend="c"
        )
        src = cm.program.native_module.native
        n = cm.program.num_states
        assert 0 < src.jac_nnz < n * n


@needs_cc
class TestFaultMatrixWithNativeTasks:
    """The recovery ladder must work unchanged when tasks are native."""

    @pytest.mark.parametrize("mode", ["raise", "hang", "nan"])
    def test_recovers_and_matches_serial(self, programs, mode):
        py, c = programs("bearing2d")
        assert c.native_module is not None
        reference = _evaluate(SerialExecutor, c, 0.0, c.start_vector())
        events = RuntimeEvents()
        spec = dict(task_id=1, mode=mode, count=1)
        if mode == "hang":
            spec["hang_seconds"] = 0.05
        injector = FaultInjector([FaultSpec(**spec)], events=events)
        with ThreadedExecutor(
            c, 2, injector=injector, events=events
        ) as executor:
            res = c.results_buffer()
            executor.evaluate(
                0.0, c.start_vector(), c.param_vector(), res
            )
        assert np.array_equal(res, reference)
        assert events.count("fault_injected") == 1
        if mode in ("raise", "nan"):
            assert events.count("task_retry") == 1


class TestGracefulDegradation:
    def test_no_toolchain_falls_back_to_python(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-cc"))
        native_layer._reset_toolchain_probe()
        try:
            ctx = compile_context(
                model=build_servo(),
                options=CompileOptions(backend="c", jacobian=True),
            )
            program = ctx.program
            assert program is not None
            assert program.native_module is None
            assert program.backend == "python"
            assert program.native_fallback_reason == "no_compiler"
            assert ctx.metrics["native_unavailable"] == "no_compiler"
            warnings = [
                d for d in ctx.diagnostics if d.severity == "warning"
            ]
            assert any("native backend unavailable" in d.message
                       for d in warnings)
            # Still fully executable through the Python module.
            out = program.rhs(0.0, program.start_vector())
            assert np.all(np.isfinite(out))
            assert program.make_jac() is not None
        finally:
            native_layer._reset_toolchain_probe()

    def test_no_toolchain_report_has_structured_reason(
        self, monkeypatch, tmp_path
    ):
        from repro.compiler import PipelineReport

        monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-cc"))
        native_layer._reset_toolchain_probe()
        try:
            cm = compile_model(build_servo(), backend="c")
            report = cm.report
            assert report.metrics["native_unavailable"] == "no_compiler"
            text = "\n".join(report.summary_lines())
            assert "native unavailable" in text
            assert "fell back" in text
        finally:
            native_layer._reset_toolchain_probe()

    @needs_cc
    def test_compile_failure_degrades_not_raises(self, tmp_path):
        bad = NativeSource(
            source="this is not C at all;",
            cdef="", name="broken", num_states=1, num_partials=0,
            num_tasks=0, num_params=0, has_jacobian=False,
            jac_rows=(), jac_cols=(), num_lines=1, num_cse=0,
        )
        with pytest.raises(NativeUnavailable) as exc:
            build_native_module(bad, cache=NativeCache(tmp_path))
        assert exc.value.reason == "compile_failed"


@needs_cc
class TestNativeCache:
    def _tiny(self, tag: int) -> NativeSource:
        source = "\n".join([
            f"/* tiny model {tag} */",
            "int NUM_STATES(void) { return 1; }",
            "int NUM_PARTIALS(void) { return 0; }",
            "int NUM_TASKS(void) { return 0; }",
            "void RHS(double t, const double *yin, const double *p, "
            "double *yout)",
            f"{{ (void)t; (void)p; yout[0] = yin[0] * {tag}.0; }}",
            "void START(double *y0) { y0[0] = 1.0; }",
            "void PARAMS(double *pout) { (void)pout; }",
        ])
        cdef = "\n".join([
            "int NUM_STATES(void);",
            "int NUM_PARTIALS(void);",
            "int NUM_TASKS(void);",
            "void RHS(double t, const double *yin, const double *p, "
            "double *yout);",
            "void START(double *y0);",
            "void PARAMS(double *pout);",
        ])
        return NativeSource(
            source=source, cdef=cdef, name=f"tiny{tag}", num_states=1,
            num_partials=0, num_tasks=0, num_params=0, has_jacobian=False,
            jac_rows=(), jac_cols=(), num_lines=source.count("\n") + 1,
            num_cse=0,
        )

    def test_warm_reuse_within_process(self, tmp_path):
        cache = NativeCache(tmp_path)
        src = self._tiny(7)
        _, cold = build_native_module(src, cache=cache)
        _, warm = build_native_module(src, cache=cache)
        assert cold["cache_hit"] is False
        assert warm["cache_hit"] is True and warm["level"] == "memory"
        assert warm["build_ms"] < 50.0

    def test_warm_reuse_across_processes_is_a_dlopen(self, tmp_path):
        cache = NativeCache(tmp_path)
        src = self._tiny(8)
        build_native_module(src, cache=cache)
        fresh = NativeCache(tmp_path)  # simulates a new process
        module, info = build_native_module(src, cache=fresh)
        assert info["cache_hit"] is True and info["level"] == "disk"
        out = np.empty(1)
        module.rhs(0.0, np.array([3.0]), np.empty(0), out)
        assert out[0] == 24.0

    def test_eviction_drops_oldest_and_records_event(self, tmp_path):
        events = RuntimeEvents()
        cache = NativeCache(tmp_path, max_entries=2, events=events)
        keys = []
        for tag in (1, 2, 3):
            src = self._tiny(tag)
            build_native_module(src, cache=cache)
            keys.append(native_layer.native_key(src))
            # Distinct mtimes so the LRU order is unambiguous.
            so = cache.so_path(keys[-1])
            os.utime(so, (so.stat().st_atime, so.stat().st_mtime + tag))
        remaining = sorted(p.stem for p in tmp_path.glob("*.so"))
        assert len(remaining) == 2
        assert keys[0] not in remaining
        assert cache.evictions == 1
        evts = [e for e in events if e.kind == "native_cache_evicted"]
        assert len(evts) == 1 and evts[0].data["key"] == keys[0]

    def test_size_bound_eviction(self, tmp_path):
        cache = NativeCache(tmp_path, max_bytes=1)
        for tag in (4, 5):
            build_native_module(self._tiny(tag), cache=cache)
        # Bounds force everything but the newest object out.
        assert len(list(tmp_path.glob("*.so"))) == 1
        assert cache.evictions == 1

    def test_toolchain_fingerprint_in_key(self):
        src = self._tiny(9)
        key = native_layer.native_key(src)
        assert key is not None and len(key) == 64
        assert native_layer.native_key(src) == key

    def test_ctypes_fallback_agrees(self, tmp_path, monkeypatch):
        cache = NativeCache(tmp_path)
        src = self._tiny(6)
        module, _ = build_native_module(src, cache=cache)
        monkeypatch.setenv("REPRO_NATIVE_FFI", "ctypes")
        via_ctypes = load_native_module(module.path, src)
        assert via_ctypes.ffi_kind == "ctypes"
        y = np.array([2.5])
        a, b = np.empty(1), np.empty(1)
        module.rhs(0.0, y, np.empty(0), a)
        via_ctypes.rhs(0.0, y, np.empty(0), b)
        assert a[0] == b[0] == 15.0


@needs_cc
class TestPipelineIntegration:
    def test_artifact_cache_roundtrip_restores_native(self, tmp_path):
        cache = ArtifactCache(tmp_path / "artifacts")
        opts = CompileOptions(backend="c", jacobian=True, cache=cache)
        ctx1 = compile_context(model=build_servo(), options=opts)
        assert ctx1.metrics["cache_hit"] is False
        assert ctx1.program.native_module is not None
        cache.drop_memory()  # simulate a process restart
        ctx2 = compile_context(model=build_servo(), options=opts)
        assert ctx2.metrics["cache_hit"] is True
        assert ctx2.program.native_module is not None
        assert ctx2.native_source == ctx1.native_source
        t, y = 0.2, ctx1.program.start_vector() + 0.01
        assert np.array_equal(
            ctx2.program.rhs(t, y), ctx1.program.rhs(t, y)
        )

    def test_warm_native_link_is_fast(self, tmp_path):
        """Warm-cache native compile: link_native adds < 50 ms."""
        cache = ArtifactCache(tmp_path / "artifacts")
        opts = CompileOptions(backend="c", cache=cache)
        compile_context(model=build_servo(), options=opts)
        ctx = compile_context(model=build_servo(), options=opts)
        assert ctx.metrics["cache_hit"] is True
        assert ctx.metrics["native_cache_hit"] is True
        ran = {m["name"]: m for m in ctx.pass_metrics
               if m["status"] == "ran"}
        assert ran["link_native"]["wall_s"] < 0.050

    def test_explain_reports_native_build(self):
        cm = compile_model(build_servo(), backend="c")
        text = "\n".join(cm.report.summary_lines())
        assert "link_native" in text
        assert "native build:" in text

    def test_cache_key_differs_from_python_backend(self):
        from repro.compiler import artifact_key, model_fingerprint

        h = model_fingerprint(build_servo().flatten())
        assert artifact_key(h, CompileOptions(backend="c")) != \
            artifact_key(h, CompileOptions(backend="python"))

    def test_process_executor_rebuilds_native(self, programs):
        from repro.runtime import ProcessExecutor

        _, c = programs("bearing2d")
        assert c.native_module is not None
        spec = c.rebuild_spec()
        assert spec.native_source is not None
        reference = _evaluate(SerialExecutor, c, 0.0, c.start_vector())
        with ProcessExecutor(c, num_workers=2) as executor:
            res = c.results_buffer()
            executor.evaluate(
                0.0, c.start_vector(), c.param_vector(), res
            )
        assert np.array_equal(res, reference)

    def test_program_spec_survives_missing_so(self, programs, tmp_path):
        """Workers rebuild from source when the parent's .so vanished."""
        _, c = programs("servo")
        spec = c.rebuild_spec()
        import dataclasses

        spec = dataclasses.replace(
            spec,
            native_so_path=str(tmp_path / "gone.so"),
            native_cache_root=str(tmp_path / "fresh-cache"),
        )
        tasks = spec.build_tasks()
        assert len(tasks) == c.num_tasks
        res = c.results_buffer()
        want = c.results_buffer()
        tasks[0](0.1, c.start_vector(), c.param_vector(), res)
        c.task_callables()[0](
            0.1, c.start_vector(), c.param_vector(), want
        )
        assert np.array_equal(res, want)
